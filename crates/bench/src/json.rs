//! Machine-readable benchmark output (`repro --json-out FILE`).
//!
//! Runs every labelling backend (plus CH) on a fixed set of *seeded*
//! synthetic workloads and emits one JSON document with per-method query
//! ns/op, build seconds and index bytes, so the perf trajectory of the
//! repository can be tracked file-over-file across PRs (`BENCH_PR2.json` is
//! the first committed point).
//!
//! The runner doubles as a correctness smoke test: every method's answers
//! are checked against Dijkstra on the full query workload, and any mismatch
//! aborts the process with a non-zero exit code — CI runs it on a small grid
//! for exactly this reason.

use std::collections::HashMap;
use std::time::Instant;

use hc2l_graph::{dijkstra, Distance, Graph, GraphBuilder, Vertex};
use hc2l_roadnet::{random_pairs, QueryPair, RoadNetworkConfig, WeightMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::measure::{measure_build, measure_one_to_many};
use crate::oracle::{DistanceOracle, Method};

/// One benchmark workload: a seeded graph plus a seeded query set.
pub struct JsonWorkload {
    /// Workload name as it appears in the JSON output.
    pub name: String,
    /// The graph under test.
    pub graph: Graph,
    /// Point-to-point query pairs.
    pub pairs: Vec<QueryPair>,
    /// How many timed repetitions of the pair set to run.
    pub reps: usize,
}

/// A `rows x cols` grid with seeded random weights in `1..=20` — the
/// reference workload for cross-PR query-time comparisons.
pub fn seeded_grid(rows: usize, cols: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), rng.random_range(1..=20u32));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), rng.random_range(1..=20u32));
            }
        }
    }
    b.build()
}

/// The standard workload set: the seeded 64x64 grid plus a synthetic city.
pub fn standard_workloads(queries: usize) -> Vec<JsonWorkload> {
    let grid = seeded_grid(64, 64, 0xA11CE);
    let city = RoadNetworkConfig::city(48, 48, 7)
        .generate()
        .graph(WeightMode::Distance);
    vec![
        JsonWorkload {
            pairs: random_pairs(grid.num_vertices(), queries, 0xBEEF),
            name: "grid-64x64".to_string(),
            graph: grid,
            reps: 25,
        },
        JsonWorkload {
            pairs: random_pairs(city.num_vertices(), queries, 0xBEEF),
            name: "city-48x48".to_string(),
            graph: city,
            reps: 25,
        },
    ]
}

/// A small, fast workload set for CI smoke runs.
pub fn smoke_workloads(queries: usize) -> Vec<JsonWorkload> {
    let grid = seeded_grid(16, 16, 0xA11CE);
    vec![JsonWorkload {
        pairs: random_pairs(grid.num_vertices(), queries, 0xBEEF),
        name: "grid-16x16".to_string(),
        graph: grid,
        reps: 10,
    }]
}

/// Per-method measurements on one workload.
pub struct JsonRow {
    /// Workload name.
    pub workload: String,
    /// Method display name.
    pub method: &'static str,
    /// Vertices / edges of the workload graph.
    pub num_vertices: usize,
    /// Edges of the workload graph.
    pub num_edges: usize,
    /// Wall-clock build seconds.
    pub build_seconds: f64,
    /// Mean point-to-point query latency in nanoseconds.
    pub query_ns_per_op: f64,
    /// Mean amortised one-to-many latency per target in nanoseconds.
    pub one_to_many_ns_per_target: f64,
    /// Total index footprint in bytes.
    pub index_bytes: usize,
    /// Number of distinct point-to-point queries timed per repetition.
    pub num_queries: usize,
}

/// Runs every method on every workload, verifying exactness against Dijkstra.
///
/// Returns the measurement rows, or an error message describing the first
/// divergence found.
pub fn run_json_bench(workloads: &[JsonWorkload], threads: usize) -> Result<Vec<JsonRow>, String> {
    let mut rows = Vec::new();
    for w in workloads {
        // Reference answers, one Dijkstra per distinct source.
        let mut reference: HashMap<Vertex, Vec<Distance>> = HashMap::new();
        for p in &w.pairs {
            reference
                .entry(p.source)
                .or_insert_with(|| dijkstra(&w.graph, p.source));
        }

        for method in Method::ALL {
            // HC2Lp must appear in every baseline (and be exactness-gated)
            // even on single-core hosts: a 2-thread build is correct
            // anywhere and produces an identical index.
            let threads = if method == Method::Hc2lParallel {
                threads.max(2)
            } else {
                threads
            };
            let build = measure_build(method, &w.graph, threads);
            let oracle = &build.oracle;

            // Exactness gate: the whole pair set must match Dijkstra.
            for p in &w.pairs {
                let got = oracle.distance(p.source, p.target);
                let want = reference[&p.source][p.target as usize];
                if got != want {
                    return Err(format!(
                        "{} on {}: query ({}, {}) returned {} but Dijkstra says {}",
                        oracle.name(),
                        w.name,
                        p.source,
                        p.target,
                        got,
                        want
                    ));
                }
            }

            // Point-to-point timing: one warmup pass, then `reps` timed passes.
            let mut checksum: u128 = 0;
            for p in &w.pairs {
                checksum = checksum.wrapping_add(oracle.distance(p.source, p.target) as u128);
            }
            let start = Instant::now();
            for _ in 0..w.reps {
                for p in &w.pairs {
                    checksum = checksum.wrapping_add(oracle.distance(p.source, p.target) as u128);
                }
            }
            let elapsed = start.elapsed();
            std::hint::black_box(checksum);
            let query_ns = elapsed.as_secs_f64() * 1e9 / (w.reps * w.pairs.len()) as f64;

            // One-to-many timing: batched rows from a few sources, through
            // the buffer-reusing measurement helper.
            let targets: Vec<Vertex> = w.pairs.iter().map(|p| p.target).collect();
            let sources: Vec<Vertex> = w.pairs.iter().take(16).map(|p| p.source).collect();
            let otm_ns = measure_one_to_many(oracle, &sources, &targets, w.reps);

            rows.push(JsonRow {
                workload: w.name.clone(),
                method: oracle.name(),
                num_vertices: w.graph.num_vertices(),
                num_edges: w.graph.num_edges(),
                build_seconds: build.build_seconds,
                query_ns_per_op: query_ns,
                one_to_many_ns_per_target: otm_ns,
                index_bytes: oracle.index_bytes(),
                num_queries: w.pairs.len(),
            });
        }
    }
    Ok(rows)
}

/// Renders the rows as a stable, pretty-printed JSON document.
///
/// Serialisation is hand-rolled because the workspace builds offline against
/// a marker-only serde stand-in (see `vendor/README.md`).
pub fn render_json(rows: &[JsonRow]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"method\": \"{}\", ",
                "\"num_vertices\": {}, \"num_edges\": {}, ",
                "\"build_seconds\": {:.6}, \"query_ns_per_op\": {:.1}, ",
                "\"one_to_many_ns_per_target\": {:.1}, ",
                "\"index_bytes\": {}, \"num_queries\": {}}}{}\n"
            ),
            r.workload,
            r.method,
            r.num_vertices,
            r.num_edges,
            r.build_seconds,
            r.query_ns_per_op,
            r.one_to_many_ns_per_target,
            r.index_bytes,
            r.num_queries,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs_and_renders() {
        let workloads = smoke_workloads(50);
        let rows = run_json_bench(&workloads, 1).expect("smoke bench must be exact");
        assert!(!rows.is_empty());
        let json = render_json(&rows);
        assert!(json.contains("\"grid-16x16\""));
        assert!(json.contains("\"query_ns_per_op\""));
        assert!(json.ends_with("}\n"));
        // Every method appears, including HC2Lp on single-core hosts.
        for name in ["HC2L", "HC2Lp", "H2H", "PHL", "HL", "CH"] {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
    }

    #[test]
    fn seeded_grid_is_deterministic() {
        let a = seeded_grid(8, 8, 3);
        let b = seeded_grid(8, 8, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
