//! Machine-readable benchmark output (`repro --json-out FILE`).
//!
//! Runs every labelling backend (plus CH) on a fixed set of *seeded*
//! synthetic workloads and emits one JSON document with per-method query
//! ns/op, build seconds, **load seconds** and index bytes, so the perf
//! trajectory of the repository can be tracked file-over-file across PRs
//! (`BENCH_PR2.json` is the first committed point, `BENCH_PR3.json` adds the
//! persistence column).
//!
//! Since the persistence PR the runner also exercises the index-container
//! round trip: each built index is saved to disk, reloaded (timed — this is
//! the "build once / load many" number a serve-only deployment cares
//! about), checked for agreement with the built index on the whole query
//! workload, and the *loaded* index is what the query timings run on — so a
//! format regression that changed any answer, byte size or query latency is
//! caught here. `--load-index DIR` skips construction entirely and serves
//! from previously saved files.
//!
//! The runner doubles as a correctness smoke test: every method's answers
//! are checked against Dijkstra on the full query workload, and any mismatch
//! aborts the process with a non-zero exit code — CI runs it on a small grid
//! for exactly this reason.
//!
//! Since the serving PR each row also carries **`queries_per_second`** and
//! **`cache_hit_rate`**: the saved container is re-opened through the mmap
//! path (`SharedOracle::open`, verified against the decoded index on the
//! whole pair set) and driven by [`SERVE_THREADS`] concurrent workers
//! through the `hc2l-serve` result cache — the aggregate serving-throughput
//! number a deployment of that method would sustain on a repeating
//! workload (`BENCH_PR4.json` is the first committed point with these
//! columns).
//!
//! Since the event-driven-serving PR each row additionally carries
//! **`concurrent_connections`**: an epoll-model server is booted on the
//! same shared state and holds that many TCP connections (mostly idle,
//! [`SERVE_THREADS`] actively replaying the pair set) while every
//! over-the-wire answer is gated against Dijkstra — a mismatch aborts the
//! bench (`BENCH_PR5.json` is the first committed point with this column;
//! [`SCALING_CONNECTIONS`] = 512 on the standard workloads).
//!
//! Since the dynamic-updates PR each row also carries **`update_ms_1`**,
//! **`update_ms_100`** and **`update_ms_10000`** — wall-clock milliseconds
//! to absorb a seeded live-traffic batch (mostly weight increases) of that
//! size into a clone of the built index (the updatable-daemon scenario; in
//! `--load-index` mode the loaded clone is used and backends whose
//! incremental path needs unpersisted construction state honestly fall
//! back to `rebuild`) — plus **`update_strategy`** (how
//! the small batch was absorbed: `ch-customize`, `hc2l-relabel` or
//! `rebuild`) and **`rebuild_ms`**, the from-scratch build on the
//! re-weighted graph the incremental paths are racing. Every updated index
//! is re-gated against Dijkstra on the re-weighted graph before its timing
//! is accepted (`BENCH_PR6.json` is the first committed point with these
//! columns).
//!
//! Since the SIMD-kernels PR each row also carries **`kernel`** — the
//! min-plus kernel the timings ran under (`scalar`, `avx2` or `neon`; see
//! `hc2l_graph::kernels`). All kernels return bit-identical answers, so the
//! column exists to make latency comparisons between bench files honest: a
//! file produced under `HC2L_KERNEL=scalar` is not comparable to an `avx2`
//! one (`BENCH_PR8.json` is the first committed point with this column).
//!
//! Since the observability PR each row also carries **`query_p50_ns`** /
//! **`query_p99_ns`** (tail latency from an *individually*-timed pass over
//! the same exactness-gated pairs — see the comment at the measurement for
//! why these are not comparable to the batch-amortised `query_ns_per_op`),
//! **`build_phases`** (a `{phase: nanos}` object drained from
//! `hc2l_obs::phase` around the build; empty in `--load-index` mode) and
//! **`obs_overhead_pct`** — the committed `queries_per_second` is measured
//! with the serve layer's latency histograms *recording on every request*,
//! and this column is the percentage the recording-off throughput beat it
//! by, so the cost of always-on metrics is measured instead of assumed
//! (`BENCH_PR9.json` is the first committed point with these columns).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hc2l_graph::{dijkstra, Distance, Graph, Vertex};
use hc2l_roadnet::{random_pairs, QueryPair, RoadNetworkConfig, WeightMode};

use std::sync::Arc;

use hc2l_serve::{measure_throughput, ServeState};

use crate::measure::{measure_build, measure_one_to_many};
use crate::oracle::{DistanceOracle, Method, Oracle};

/// One benchmark workload: a seeded graph plus a seeded query set.
pub struct JsonWorkload {
    /// Workload name as it appears in the JSON output.
    pub name: String,
    /// The graph under test.
    pub graph: Graph,
    /// Point-to-point query pairs.
    pub pairs: Vec<QueryPair>,
    /// How many timed repetitions of the pair set to run.
    pub reps: usize,
    /// Concurrent TCP connections (mostly idle, [`SERVE_THREADS`] active)
    /// the connection-scaling gate holds against an epoll-model server
    /// while verifying exactness — the `concurrent_connections` column.
    pub connections: usize,
}

/// How the JSON bench exercises index persistence.
pub enum IndexPersistence {
    /// Build, save into `dir`, reload (timed), verify the loaded index
    /// agrees with the built one on the whole workload, and time queries on
    /// the loaded index. With `keep: false` the files are removed at the
    /// end (`repro --save-index DIR` sets `keep: true`).
    RoundTrip {
        /// Directory the container files are written to (created if absent).
        dir: PathBuf,
        /// Whether to leave the files on disk after the run.
        keep: bool,
    },
    /// Serve-only mode (`repro --load-index DIR`): load each method's index
    /// from a previous `--save-index` run instead of building.
    /// `build_seconds` is reported as 0.
    LoadOnly {
        /// Directory holding the previously saved container files.
        dir: PathBuf,
    },
}

impl IndexPersistence {
    /// The container file a given workload + method pair maps to.
    pub fn index_path(dir: &Path, workload: &str, method: Method) -> PathBuf {
        dir.join(format!(
            "{workload}-{}.hc2l",
            method.name().to_ascii_lowercase()
        ))
    }
}

/// The seeded reference grid (now shared with the serve-smoke workload
/// generator; re-exported here for the bench callers that predate the move).
pub use hc2l_roadnet::seeded_grid;

/// The standard workload set: the seeded 64x64 grid plus a synthetic city.
pub fn standard_workloads(queries: usize) -> Vec<JsonWorkload> {
    let grid = seeded_grid(64, 64, 0xA11CE);
    let city = RoadNetworkConfig::city(48, 48, 7)
        .generate()
        .graph(WeightMode::Distance);
    vec![
        JsonWorkload {
            pairs: random_pairs(grid.num_vertices(), queries, 0xBEEF),
            name: "grid-64x64".to_string(),
            graph: grid,
            reps: 25,
            connections: SCALING_CONNECTIONS,
        },
        JsonWorkload {
            pairs: random_pairs(city.num_vertices(), queries, 0xBEEF),
            name: "city-48x48".to_string(),
            graph: city,
            reps: 25,
            connections: SCALING_CONNECTIONS,
        },
    ]
}

/// A small, fast workload set for CI smoke runs. The connection-scaling
/// gate runs at 64 connections here: CI runners commonly cap open fds at
/// 1024, and the client side of the gate lives in the same process.
pub fn smoke_workloads(queries: usize) -> Vec<JsonWorkload> {
    let grid = seeded_grid(16, 16, 0xA11CE);
    vec![JsonWorkload {
        pairs: random_pairs(grid.num_vertices(), queries, 0xBEEF),
        name: "grid-16x16".to_string(),
        graph: grid,
        reps: 10,
        connections: 64,
    }]
}

/// Per-method measurements on one workload.
pub struct JsonRow {
    /// Workload name.
    pub workload: String,
    /// Method display name.
    pub method: &'static str,
    /// Active min-plus kernel the timings ran under
    /// (`hc2l_graph::active_kernel().name()`): `scalar`, `avx2` or `neon`.
    /// Forceable via `HC2L_KERNEL`; all kernels are bit-identical, so this
    /// column only explains latency differences between bench files.
    pub kernel: &'static str,
    /// Vertices / edges of the workload graph.
    pub num_vertices: usize,
    /// Edges of the workload graph.
    pub num_edges: usize,
    /// Wall-clock build seconds (0 in `--load-index` mode).
    pub build_seconds: f64,
    /// Wall-clock seconds to load the saved index container back from disk
    /// — the serve-restart cost that replaces `build_seconds` in a
    /// build-once/load-many deployment.
    pub load_seconds: f64,
    /// Mean point-to-point query latency in nanoseconds.
    pub query_ns_per_op: f64,
    /// Median single-query latency from the individually-timed pass. Each
    /// query pays its own clock-read pair here (~30ns on the reference
    /// host), so the tail columns sit above the batch-amortised
    /// `query_ns_per_op` by construction — compare them to each other
    /// across bench files, not to the mean column.
    pub query_p50_ns: u64,
    /// 99th-percentile single-query latency from the same pass.
    pub query_p99_ns: u64,
    /// Per-phase build nanoseconds drained from `hc2l_obs::phase` around
    /// the construction call (`contract`, `cut_partition`, `labelling`,
    /// `freeze`, ... — whatever the backend emits, in emission order).
    /// Phases are CPU-time-like (summed across build workers) and empty in
    /// `--load-index` mode, where nothing is built.
    pub build_phases: Vec<(&'static str, u64)>,
    /// How much faster the throughput run was with latency recording
    /// switched *off* (percent; negative means the off leg measured slower,
    /// i.e. the difference drowned in scheduler noise). The committed
    /// `queries_per_second` is the recording-*on* number — this column
    /// keeps the histogram overhead measured rather than assumed.
    pub obs_overhead_pct: f64,
    /// Mean amortised one-to-many latency per target in nanoseconds.
    pub one_to_many_ns_per_target: f64,
    /// Aggregate serving throughput: exact point-to-point queries per
    /// second sustained by [`SERVE_THREADS`] workers sharing one
    /// mmap-opened index behind the serve layer's result cache.
    pub queries_per_second: f64,
    /// Result-cache hit rate over the throughput run (the workload replays
    /// the same pair set [`SERVE_REPS`] times, so steady-state serving of a
    /// repeating workload is what this measures).
    pub cache_hit_rate: f64,
    /// Concurrent TCP connections the epoll-model server held — mostly
    /// idle, [`SERVE_THREADS`] actively replaying — while every answer was
    /// verified exact over the wire. The connection-*scaling* claim of the
    /// serving layer, next to the raw-throughput claim above.
    pub concurrent_connections: usize,
    /// Total index footprint in bytes (the exact container-file size).
    pub index_bytes: usize,
    /// Number of distinct point-to-point queries timed per repetition.
    pub num_queries: usize,
    /// Milliseconds to absorb a 1-update live-traffic batch (exactness
    /// re-gated against Dijkstra on the re-weighted graph).
    pub update_ms_1: f64,
    /// Milliseconds to absorb a 100-update batch.
    pub update_ms_100: f64,
    /// Milliseconds to absorb a 10,000-update batch.
    pub update_ms_10000: f64,
    /// How the 1-update batch was absorbed (`UpdateStrategy::name`):
    /// `ch-customize` and `hc2l-relabel` are incremental, `rebuild` is the
    /// fallback every other backend takes.
    pub update_strategy: &'static str,
    /// Milliseconds for a from-scratch build on the re-weighted graph — the
    /// baseline the incremental update paths must beat on small batches.
    pub rebuild_ms: f64,
}

/// Worker threads of the throughput measurement — fixed (not
/// host-dependent) so `queries_per_second` is comparable across runs, and
/// matching the "≥ 8 concurrent clients" bar the serve suite tests.
pub const SERVE_THREADS: usize = 8;

/// Times each worker replays the pair set during the throughput run (high
/// enough that the timed section dwarfs thread start-up and scheduling
/// noise).
pub const SERVE_REPS: usize = 25;

/// Result-cache capacity used for the throughput run.
pub const SERVE_CACHE: usize = 1 << 16;

/// Connection count of the scaling gate on the standard workloads — the
/// "≥ 512 concurrent connections, bit-identical answers" serving bar.
pub const SCALING_CONNECTIONS: usize = 512;

/// Times each active client replays the pair set during the scaling gate
/// (over real sockets, so far fewer reps than the in-process run).
pub const SCALING_REPS: usize = 2;

/// Runs every method on every workload, verifying exactness against Dijkstra
/// and exercising the save/load round trip per [`IndexPersistence`].
///
/// Returns the measurement rows, or an error message describing the first
/// divergence (or persistence failure) found.
pub fn run_json_bench(
    workloads: &[JsonWorkload],
    threads: usize,
    persist: &IndexPersistence,
) -> Result<Vec<JsonRow>, String> {
    // The tail-percentile pass records into a histogram via the TSC clock;
    // calibrating up front keeps the ~4ms one-shot spin out of the first
    // recorded sample.
    hc2l_obs::clock::calibrate();
    let dir = match persist {
        IndexPersistence::RoundTrip { dir, .. } | IndexPersistence::LoadOnly { dir } => dir,
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written: Vec<PathBuf> = Vec::new();
    let result = run_persisted(workloads, threads, persist, dir, &mut written);
    // Scratch files are removed whether the run succeeded or aborted on a
    // divergence — a failing gate must not leak container files.
    if let IndexPersistence::RoundTrip { keep: false, .. } = persist {
        for path in &written {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_dir(dir);
    }
    result
}

fn run_persisted(
    workloads: &[JsonWorkload],
    threads: usize,
    persist: &IndexPersistence,
    dir: &Path,
    written: &mut Vec<PathBuf>,
) -> Result<Vec<JsonRow>, String> {
    let mut rows = Vec::new();
    for w in workloads {
        // Reference answers, one Dijkstra per distinct source.
        let mut reference: HashMap<Vertex, Vec<Distance>> = HashMap::new();
        for p in &w.pairs {
            reference
                .entry(p.source)
                .or_insert_with(|| dijkstra(&w.graph, p.source));
        }

        for method in Method::ALL {
            // HC2Lp must appear in every baseline (and be exactness-gated)
            // even on single-core hosts: a 2-thread build is correct
            // anywhere and produces an identical index.
            let threads = if method == Method::Hc2lParallel {
                threads.max(2)
            } else {
                threads
            };
            let path = IndexPersistence::index_path(dir, &w.name, method);

            // Obtain the oracle: build + save + reload, or load only. The
            // built oracle is kept around (RoundTrip mode) because the
            // live-update timings run on it — see below. The phase table is
            // drained immediately before the build (discarding spans from
            // earlier methods' update/rebuild timings in this process) and
            // immediately after, so `build_phases` covers exactly this
            // construction call.
            let (oracle, built, build_seconds, load_seconds, build_phases) = match persist {
                IndexPersistence::RoundTrip { .. } => {
                    hc2l_obs::phase::drain();
                    let build = measure_build(method, &w.graph, threads);
                    let build_phases = hc2l_obs::phase::drain();
                    build
                        .oracle
                        .save(&path)
                        .map_err(|e| format!("saving {} failed: {e}", path.display()))?;
                    written.push(path.clone());
                    let start = Instant::now();
                    let loaded = Oracle::load(&path)
                        .map_err(|e| format!("loading {} failed: {e}", path.display()))?;
                    let load_seconds = start.elapsed().as_secs_f64();
                    // The container round trip must be lossless: diff the
                    // loaded index against the built one on the whole
                    // workload, and the reported size against the file.
                    for p in &w.pairs {
                        let (a, b) = (
                            build.oracle.distance(p.source, p.target),
                            loaded.distance(p.source, p.target),
                        );
                        if a != b {
                            return Err(format!(
                                "{} on {}: loaded index answers ({}, {}) with {} but the built index says {}",
                                loaded.name(), w.name, p.source, p.target, b, a
                            ));
                        }
                    }
                    let file_len = std::fs::metadata(&path)
                        .map(|m| m.len() as usize)
                        .unwrap_or(0);
                    if file_len != loaded.index_bytes() {
                        return Err(format!(
                            "{} on {}: index_bytes reports {} but {} is {} bytes",
                            loaded.name(),
                            w.name,
                            loaded.index_bytes(),
                            path.display(),
                            file_len
                        ));
                    }
                    (
                        loaded,
                        Some(build.oracle),
                        build.build_seconds,
                        load_seconds,
                        build_phases,
                    )
                }
                IndexPersistence::LoadOnly { .. } => {
                    let start = Instant::now();
                    let loaded = Oracle::load(&path)
                        .map_err(|e| format!("loading {} failed: {e}", path.display()))?;
                    (loaded, None, 0.0, start.elapsed().as_secs_f64(), Vec::new())
                }
            };

            // Exactness gate: the whole pair set must match Dijkstra.
            for p in &w.pairs {
                let got = oracle.distance(p.source, p.target);
                let want = reference[&p.source][p.target as usize];
                if got != want {
                    return Err(format!(
                        "{} on {}: query ({}, {}) returned {} but Dijkstra says {}",
                        oracle.name(),
                        w.name,
                        p.source,
                        p.target,
                        got,
                        want
                    ));
                }
            }

            // Point-to-point timing: one warmup pass, then `reps` timed
            // passes. The reported latency is the *fastest pass's* mean —
            // each pass already averages over the whole pair set, and
            // taking the minimum across passes filters scheduler /
            // frequency interference that a mean over all passes would
            // smear into the number (on small shared runners the
            // difference is double-digit percent).
            let mut checksum: u128 = 0;
            for p in &w.pairs {
                checksum = checksum.wrapping_add(oracle.distance(p.source, p.target) as u128);
            }
            let mut best_pass = f64::INFINITY;
            for _ in 0..w.reps {
                let start = Instant::now();
                for p in &w.pairs {
                    checksum = checksum.wrapping_add(oracle.distance(p.source, p.target) as u128);
                }
                best_pass = best_pass.min(start.elapsed().as_secs_f64());
            }
            std::hint::black_box(checksum);
            let query_ns = best_pass * 1e9 / w.pairs.len() as f64;

            // Tail percentiles: the same exactness-gated pairs, timed
            // *individually* into a latency histogram over all `reps`
            // passes. Every query pays its own clock-read pair here (~30ns
            // on the reference host), which the batch-amortised mean above
            // does not — so p50 sits above `query_ns_per_op` by
            // construction and the columns are only comparable to
            // themselves across bench files. No best-of filter either:
            // percentiles are exactly the place where the slow outliers
            // belong in the number instead of being filtered out.
            let tail = hc2l_obs::Histogram::new();
            for _ in 0..w.reps {
                for p in &w.pairs {
                    let t0 = hc2l_obs::clock::now();
                    checksum = checksum.wrapping_add(oracle.distance(p.source, p.target) as u128);
                    tail.record(hc2l_obs::clock::ns_since(t0));
                }
            }
            std::hint::black_box(checksum);
            let tail = tail.snapshot();

            // One-to-many timing: batched rows from a few sources, through
            // the buffer-reusing measurement helper.
            let targets: Vec<Vertex> = w.pairs.iter().map(|p| p.target).collect();
            let sources: Vec<Vertex> = w.pairs.iter().take(16).map(|p| p.source).collect();
            let otm_ns = measure_one_to_many(&oracle, &sources, &targets, w.reps);

            // Serving throughput: mmap-open the saved container (zero-copy
            // views, the daemon's load path), verify it agrees with the
            // decoded index on the whole pair set, then drive it with
            // SERVE_THREADS workers through the serve layer's cache.
            let shared = hc2l_oracle::SharedOracle::open(&path)
                .map_err(|e| format!("mmap-opening {} failed: {e}", path.display()))?;
            for p in &w.pairs {
                let (a, b) = (
                    shared.distance(p.source, p.target),
                    oracle.distance(p.source, p.target),
                );
                if a != b {
                    return Err(format!(
                        "{} on {}: mmap-opened index answers ({}, {}) with {a} but the loaded index says {b}",
                        oracle.name(), w.name, p.source, p.target,
                    ));
                }
            }
            let state = Arc::new(ServeState::new(shared, SERVE_THREADS, SERVE_CACHE));
            // Two passes, best kept — the same scheduler-noise filter the
            // point timings use (a single pass on a small 1-core host can
            // lose double-digit percent to an ill-timed preemption). Run as
            // an A/B on the latency histograms: one best-of-two leg with
            // recording off, one with recording on. The *on* leg is the
            // committed `queries_per_second` — a deployment scrapes
            // metrics, so the honest throughput claim includes them — and
            // the off/on gap is reported as `obs_overhead_pct` so the
            // recording cost stays measured, not assumed.
            let best_of_two = |state: &Arc<ServeState>| {
                let a = measure_throughput(state, &w.pairs, SERVE_THREADS, SERVE_REPS);
                let b = measure_throughput(state, &w.pairs, SERVE_THREADS, SERVE_REPS);
                if a.queries_per_second >= b.queries_per_second {
                    a
                } else {
                    b
                }
            };
            state.set_latency_recording(false);
            let off = best_of_two(&state);
            state.set_latency_recording(true);
            let report = best_of_two(&state);
            let obs_overhead_pct = (off.queries_per_second - report.queries_per_second)
                / off.queries_per_second
                * 100.0;

            // Connection-scaling gate: an epoll-model server holds
            // `w.connections` concurrent connections — SERVE_THREADS of
            // them replaying, the rest idle — and every over-the-wire
            // answer must match the loaded index bit for bit. Off Linux the
            // model degrades to blocking thread-per-connection, whose
            // worker cap admits backlogged connections one 5s grace period
            // at a time — a 512-connection storm would take tens of
            // minutes there — so the count is clamped to what that model
            // actually serves well; the recorded column reflects the
            // clamped value.
            let connections =
                if hc2l_serve::ServeModel::platform_default() == hc2l_serve::ServeModel::Epoll {
                    w.connections
                } else {
                    w.connections.min(32)
                };
            let expected: Vec<Distance> = w
                .pairs
                .iter()
                .map(|p| reference[&p.source][p.target as usize])
                .collect();
            let server = hc2l_serve::serve_with_model(
                Arc::clone(&state),
                ("127.0.0.1", 0),
                hc2l_serve::ServeModel::platform_default(),
            )
            .map_err(|e| {
                format!(
                    "{} on {}: cannot bind the scaling server: {e}",
                    oracle.name(),
                    w.name
                )
            })?;
            let scaling = hc2l_serve::measure_connection_scaling(
                server.addr(),
                &w.pairs,
                &expected,
                connections,
                SERVE_THREADS,
                SCALING_REPS,
            )
            .map_err(|e| {
                format!(
                    "{} on {}: scaling run at {connections} connections failed: {e}",
                    oracle.name(),
                    w.name,
                )
            })?;
            server.shutdown().map_err(|e| {
                format!(
                    "{} on {}: scaling server drain failed: {e}",
                    oracle.name(),
                    w.name
                )
            })?;
            if scaling.mismatches > 0 {
                return Err(format!(
                    "{} on {}: {} of {} answers served over {} concurrent connections \
                     disagreed with Dijkstra",
                    oracle.name(),
                    w.name,
                    scaling.mismatches,
                    scaling.queries,
                    scaling.connections
                ));
            }

            // Live-update timings: seeded traffic batches (mostly weight
            // increases over existing edges) absorbed by a clone of the
            // *built* index — the daemon's updatable mode (`--grid`) owns a
            // built oracle, and HC2L's incremental relabel needs the
            // construction-time hierarchy, which is not persisted. In
            // `--load-index` mode only the loaded clone exists, so
            // hierarchy-less backends honestly fall back to `rebuild`
            // there. Each updated clone is re-gated against Dijkstra on the
            // re-weighted graph on a sample of the workload pairs — an
            // inexact incremental path aborts the bench exactly like an
            // inexact query path would.
            let update_base = built.as_ref().unwrap_or(&oracle);
            let updates = hc2l_roadnet::random_weight_updates(&w.graph, 10_000, 0x7AFF1C);
            let mut update_ms = [0.0f64; 3];
            let mut update_strategy = "";
            for (slot, count) in [1usize, 100, 10_000].into_iter().enumerate() {
                // The generator samples distinct edges, so a batch caps at
                // the graph's edge count.
                let count = count.min(updates.len());
                let mut g = w.graph.clone();
                let mut o = update_base.clone();
                let report = o.apply_updates(&mut g, &updates[..count]);
                update_ms[slot] = report.micros as f64 / 1000.0;
                if slot == 0 {
                    update_strategy = report.strategy.name();
                }
                let mut after: HashMap<Vertex, Vec<Distance>> = HashMap::new();
                for p in w.pairs.iter().take(40) {
                    let want = after
                        .entry(p.source)
                        .or_insert_with(|| dijkstra(&g, p.source))[p.target as usize];
                    let got = o.distance(p.source, p.target);
                    if got != want {
                        return Err(format!(
                            "{} on {}: after a {count}-update batch ({}), query ({}, {}) \
                             returned {got} but Dijkstra on the re-weighted graph says {want}",
                            oracle.name(),
                            w.name,
                            report.strategy.name(),
                            p.source,
                            p.target,
                        ));
                    }
                }
            }
            // The incremental paths race a from-scratch build on the same
            // re-weighted graph (the 100-update metric).
            let rebuild_ms = {
                let mut g = w.graph.clone();
                hc2l_oracle::apply_batch(&mut g, &updates[..100.min(updates.len())]);
                measure_build(method, &g, threads).build_seconds * 1000.0
            };

            rows.push(JsonRow {
                workload: w.name.clone(),
                method: oracle.name(),
                kernel: hc2l_graph::active_kernel().name(),
                num_vertices: w.graph.num_vertices(),
                num_edges: w.graph.num_edges(),
                build_seconds,
                load_seconds,
                query_ns_per_op: query_ns,
                query_p50_ns: tail.p50(),
                query_p99_ns: tail.p99(),
                build_phases,
                obs_overhead_pct,
                one_to_many_ns_per_target: otm_ns,
                queries_per_second: report.queries_per_second,
                cache_hit_rate: report.cache_hit_rate,
                concurrent_connections: scaling.connections,
                index_bytes: oracle.index_bytes(),
                num_queries: w.pairs.len(),
                update_ms_1: update_ms[0],
                update_ms_100: update_ms[1],
                update_ms_10000: update_ms[2],
                update_strategy,
                rebuild_ms,
            });
        }
    }
    Ok(rows)
}

/// Renders the rows as a stable, pretty-printed JSON document.
///
/// Serialisation is hand-rolled because the workspace builds offline against
/// a marker-only serde stand-in (see `vendor/README.md`).
pub fn render_json(rows: &[JsonRow]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // Nested object with data-driven keys, so it is assembled outside
        // the fixed format string. It stays last on the row line: the
        // line-oriented field extractors below stop at the first `,`/`}`
        // after a key, which inner braces earlier in the line would break.
        let phases = r
            .build_phases
            .iter()
            .map(|(name, ns)| format!("\"{name}\": {ns}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"method\": \"{}\", ",
                "\"kernel\": \"{}\", ",
                "\"num_vertices\": {}, \"num_edges\": {}, ",
                "\"build_seconds\": {:.6}, \"load_seconds\": {:.6}, ",
                "\"query_ns_per_op\": {:.1}, ",
                "\"query_p50_ns\": {}, \"query_p99_ns\": {}, ",
                "\"one_to_many_ns_per_target\": {:.1}, ",
                "\"queries_per_second\": {:.0}, ",
                "\"obs_overhead_pct\": {:.2}, ",
                "\"cache_hit_rate\": {:.4}, ",
                "\"concurrent_connections\": {}, ",
                "\"index_bytes\": {}, \"num_queries\": {}, ",
                "\"update_ms_1\": {:.3}, \"update_ms_100\": {:.3}, ",
                "\"update_ms_10000\": {:.3}, \"update_strategy\": \"{}\", ",
                "\"rebuild_ms\": {:.3}, ",
                "\"build_phases\": {{{}}}}}{}\n"
            ),
            r.workload,
            r.method,
            r.kernel,
            r.num_vertices,
            r.num_edges,
            r.build_seconds,
            r.load_seconds,
            r.query_ns_per_op,
            r.query_p50_ns,
            r.query_p99_ns,
            r.one_to_many_ns_per_target,
            r.queries_per_second,
            r.obs_overhead_pct,
            r.cache_hit_rate,
            r.concurrent_connections,
            r.index_bytes,
            r.num_queries,
            r.update_ms_1,
            r.update_ms_100,
            r.update_ms_10000,
            r.update_strategy,
            r.rebuild_ms,
            phases,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts a quoted string field from one rendered JSON row line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a numeric field from one rendered JSON row line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The most recent committed bench file (`BENCH_PR<N>.json` with the highest
/// `N`) in `dir` — the baseline `repro --json-out` diffs fresh rows against.
///
/// `exclude` names the file the current run is about to (over)write; it is
/// skipped so a re-run never diffs against its own previous output instead of
/// the last committed baseline.
pub fn previous_bench_file(dir: &Path, exclude: Option<&std::ffi::OsStr>) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        if Some(name.as_os_str()) == exclude {
            continue;
        }
        let name = name.to_string_lossy();
        let Some(n) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(m, _)| n > *m) {
            best = Some((n, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

/// Renders a per-method before/after `query_ns_per_op` comparison between a
/// previously committed bench document (`previous`, the raw JSON text) and
/// freshly measured rows.
///
/// The parser leans on the line-per-row shape [`render_json`] emits; rows
/// the previous file does not have (new workloads/methods) are reported as
/// such rather than skipped. Pre-kernel-column files compare fine — the
/// kernel annotation is only printed when both sides carry one and they
/// differ (a latency delta across different kernels says nothing about a
/// regression).
pub fn render_delta(previous_name: &str, previous: &str, rows: &[JsonRow]) -> String {
    let mut prev: HashMap<(String, String), (f64, Option<String>)> = HashMap::new();
    for line in previous.lines() {
        let (Some(w), Some(m), Some(q)) = (
            str_field(line, "workload"),
            str_field(line, "method"),
            num_field(line, "query_ns_per_op"),
        ) else {
            continue;
        };
        prev.insert((w, m), (q, str_field(line, "kernel")));
    }
    let mut out = format!("query_ns_per_op vs {previous_name}:\n");
    for r in rows {
        match prev.get(&(r.workload.clone(), r.method.to_string())) {
            Some((before, prev_kernel)) => {
                let pct = (r.query_ns_per_op - before) / before * 100.0;
                out.push_str(&format!(
                    "  {}/{}: {before:.1} -> {:.1} ns/op ({pct:+.1}%)",
                    r.workload, r.method, r.query_ns_per_op
                ));
                match prev_kernel {
                    Some(k) if k != r.kernel => {
                        out.push_str(&format!(" [kernel {k} -> {}]", r.kernel))
                    }
                    _ => {}
                }
                out.push('\n');
            }
            None => out.push_str(&format!("  {}/{}: no previous row\n", r.workload, r.method)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hc2l-json-bench-{tag}-{}", std::process::id()))
    }

    #[test]
    fn smoke_bench_round_trips_and_renders() {
        let workloads = smoke_workloads(50);
        let persist = IndexPersistence::RoundTrip {
            dir: scratch_dir("roundtrip"),
            keep: false,
        };
        let rows = run_json_bench(&workloads, 1, &persist).expect("smoke bench must be exact");
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.load_seconds > 0.0, "{} missing load time", r.method);
            assert!(r.index_bytes > 0);
            assert!(
                r.queries_per_second > 0.0,
                "{} missing serving throughput",
                r.method
            );
            assert_eq!(
                r.concurrent_connections, 64,
                "{} scaling gate did not run at the smoke count",
                r.method
            );
            // Each serve worker replays the pair set SERVE_REPS times, so
            // the steady state is dominated by hits.
            assert!(
                r.cache_hit_rate > 0.5,
                "{} cache hit rate {}",
                r.method,
                r.cache_hit_rate
            );
            assert!(r.update_ms_1 > 0.0, "{} missing update timing", r.method);
            assert!(r.rebuild_ms > 0.0, "{} missing rebuild timing", r.method);
            // Tail columns come from a real histogram pass: ordered and
            // non-zero (every query costs at least a few nanoseconds).
            assert!(r.query_p50_ns > 0, "{} missing p50", r.method);
            assert!(
                r.query_p99_ns >= r.query_p50_ns,
                "{} p99 {} below p50 {}",
                r.method,
                r.query_p99_ns,
                r.query_p50_ns
            );
            // RoundTrip mode built the index, so at least one phase span
            // must have fired (every backend emits at least "build").
            assert!(
                !r.build_phases.is_empty(),
                "{} build produced no phase spans",
                r.method
            );
            assert!(r.build_phases.iter().all(|(_, ns)| *ns > 0));
            assert!(
                r.obs_overhead_pct.is_finite(),
                "{} overhead not measured",
                r.method
            );
            // CH absorbs batches by re-customizing over its fixed order —
            // that must be measurably faster than building from scratch on
            // small batches, which is the whole point of the dynamic layer.
            if r.method == "CH" {
                assert_eq!(r.update_strategy, "ch-customize");
                assert!(
                    r.update_ms_1 < r.rebuild_ms,
                    "CH incremental update ({} ms) is not faster than a rebuild ({} ms)",
                    r.update_ms_1,
                    r.rebuild_ms
                );
            }
        }
        let json = render_json(&rows);
        assert!(json.contains("\"grid-16x16\""));
        assert!(json.contains(&format!(
            "\"kernel\": \"{}\"",
            hc2l_graph::active_kernel().name()
        )));
        assert!(json.contains("\"query_ns_per_op\""));
        assert!(json.contains("\"query_p50_ns\""));
        assert!(json.contains("\"query_p99_ns\""));
        assert!(json.contains("\"obs_overhead_pct\""));
        assert!(json.contains("\"build_phases\": {\""));
        // HC2L's instrumented stages appear by name inside the object.
        assert!(json.contains("\"cut_partition\":"));
        assert!(json.contains("\"labelling\":"));
        assert!(json.contains("\"load_seconds\""));
        assert!(json.contains("\"queries_per_second\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.contains("\"concurrent_connections\": 64"));
        assert!(json.contains("\"update_ms_1\""));
        assert!(json.contains("\"update_ms_100\""));
        assert!(json.contains("\"update_ms_10000\""));
        assert!(json.contains("\"update_strategy\": \"ch-customize\""));
        assert!(json.contains("\"rebuild_ms\""));
        assert!(json.ends_with("}\n"));
        // Every method appears, including HC2Lp on single-core hosts.
        for name in ["HC2L", "HC2Lp", "H2H", "PHL", "HL", "CH"] {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
    }

    #[test]
    fn save_then_load_only_serves_identically() {
        let workloads = smoke_workloads(30);
        let dir = scratch_dir("loadonly");
        let saved = run_json_bench(
            &workloads,
            1,
            &IndexPersistence::RoundTrip {
                dir: dir.clone(),
                keep: true,
            },
        )
        .expect("save run must succeed");
        // Serve-only: no construction, same exactness gate.
        let loaded = run_json_bench(
            &workloads,
            1,
            &IndexPersistence::LoadOnly { dir: dir.clone() },
        )
        .expect("load-only run must succeed");
        assert_eq!(saved.len(), loaded.len());
        for (s, l) in saved.iter().zip(loaded.iter()) {
            assert_eq!(s.method, l.method);
            assert_eq!(s.index_bytes, l.index_bytes);
            assert_eq!(l.build_seconds, 0.0);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn save_index_creates_missing_nested_directories() {
        // `repro --save-index DIR` must create DIR (and parents) rather
        // than erroring when it does not exist yet.
        let workloads = smoke_workloads(10);
        let root = scratch_dir("mkdir");
        let nested = root.join("deeply/nested/indexes");
        assert!(!nested.exists());
        let rows = run_json_bench(
            &workloads,
            1,
            &IndexPersistence::RoundTrip {
                dir: nested.clone(),
                keep: true,
            },
        )
        .expect("bench must create the missing directory chain");
        assert!(nested.is_dir());
        for r in &rows {
            let path = IndexPersistence::index_path(
                &nested,
                &r.workload,
                r.method.parse().expect("method name round-trips"),
            );
            assert!(path.is_file(), "{} missing", path.display());
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn previous_bench_file_picks_highest_pr_number() {
        let dir = scratch_dir("prevfile");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(previous_bench_file(&dir, None), None);
        for name in ["BENCH_PR2.json", "BENCH_PR10.json", "BENCH_PR9.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        // Not lexicographic: PR10 beats PR9. Non-matching names are ignored.
        std::fs::write(dir.join("BENCH_PRX.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.json"), "{}").unwrap();
        assert_eq!(
            previous_bench_file(&dir, None),
            Some(dir.join("BENCH_PR10.json"))
        );
        // The file a run is about to overwrite is not its own baseline.
        assert_eq!(
            previous_bench_file(&dir, Some(std::ffi::OsStr::new("BENCH_PR10.json"))),
            Some(dir.join("BENCH_PR9.json"))
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn delta_report_compares_against_previous_rows() {
        let row = |workload: &str, method: &'static str, ns: f64| JsonRow {
            workload: workload.to_string(),
            method,
            kernel: "avx2",
            num_vertices: 0,
            num_edges: 0,
            build_seconds: 0.0,
            load_seconds: 0.0,
            query_ns_per_op: ns,
            query_p50_ns: 0,
            query_p99_ns: 0,
            build_phases: Vec::new(),
            obs_overhead_pct: 0.0,
            one_to_many_ns_per_target: 0.0,
            queries_per_second: 0.0,
            cache_hit_rate: 0.0,
            concurrent_connections: 0,
            index_bytes: 0,
            num_queries: 0,
            update_ms_1: 0.0,
            update_ms_100: 0.0,
            update_ms_10000: 0.0,
            update_strategy: "rebuild",
            rebuild_ms: 0.0,
        };
        // A pre-kernel-column row and a kernel-carrying one, as committed
        // bench files render them.
        let previous = concat!(
            "{\n  \"results\": [\n",
            "    {\"workload\": \"grid\", \"method\": \"HC2L\", \"query_ns_per_op\": 40.0},\n",
            "    {\"workload\": \"grid\", \"method\": \"HL\", \"kernel\": \"scalar\", ",
            "\"query_ns_per_op\": 20.0}\n",
            "  ]\n}\n"
        );
        let rows = [
            row("grid", "HC2L", 30.0),
            row("grid", "HL", 22.0),
            row("city", "HC2L", 10.0),
        ];
        let report = render_delta("BENCH_PR7.json", previous, &rows);
        assert!(report.contains("vs BENCH_PR7.json"));
        assert!(report.contains("grid/HC2L: 40.0 -> 30.0 ns/op (-25.0%)"));
        // Kernel annotation only where the previous file recorded one.
        assert!(report.contains("grid/HL: 20.0 -> 22.0 ns/op (+10.0%) [kernel scalar -> avx2]"));
        assert!(!report.contains("HC2L: 40.0 -> 30.0 ns/op (-25.0%) [kernel"));
        assert!(report.contains("city/HC2L: no previous row"));
    }

    #[test]
    fn seeded_grid_is_deterministic() {
        let a = seeded_grid(8, 8, 3);
        let b = seeded_grid(8, 8, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
