//! Criterion micro-benchmark of the min-plus kernels (`hc2l_graph::kernels`)
//! in isolation: scalar vs the detected SIMD kernel, and each with vs
//! without cut-bound pruning, at realistic label lengths.
//!
//! The whole-system effect of the kernels is tracked by `repro --json-out`
//! (the `kernel` column of `BENCH_PR*.json`); this bench isolates the inner
//! loops so a kernel regression is attributable without rebuilding indexes.
//! Pruned variants run with a far query (`best` rarely improves, blocks
//! skip) and are bit-identical to the unpruned ones by construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc2l_graph::{
    available_kernels, block_min_bounds, detect_kernel, force_kernel, min_plus_gather,
    min_plus_merge, min_plus_merge_pruned, min_plus_scan, min_plus_scan_pruned,
    suffix_block_bounds, Distance, INFINITY,
};

/// Label lengths the scans run at: a typical HC2L cut-level width, a large
/// hub label, and a stress length well past the SIMD tails.
const LENGTHS: [usize; 3] = [32, 160, 512];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A distance column with the value profile labels have: small finite
/// distances with a sprinkling of `INFINITY` (unreachable cuts).
fn random_dists(rng: &mut Rng, len: usize) -> Vec<Distance> {
    (0..len)
        .map(|_| {
            if rng.next().is_multiple_of(16) {
                INFINITY
            } else {
                rng.next() % 10_000
            }
        })
        .collect()
}

/// A strictly increasing hub-id column, as `FrozenHubLabels` guarantees.
fn random_hubs(rng: &mut Rng, len: usize, overlap_stride: u64) -> Vec<u32> {
    let mut hubs = Vec::with_capacity(len);
    let mut h = 0u32;
    for _ in 0..len {
        h += 1 + (rng.next() % overlap_stride) as u32;
        hubs.push(h);
    }
    hubs
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));

    for &len in &LENGTHS {
        let a = random_dists(&mut rng, len);
        let b = random_dists(&mut rng, len);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        block_min_bounds(&a, &mut ba);
        block_min_bounds(&b, &mut bb);

        let ha = random_hubs(&mut rng, len, 3);
        let hb = random_hubs(&mut rng, len, 3);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        suffix_block_bounds(&a, &mut sa);
        suffix_block_bounds(&b, &mut sb);

        let positions: Vec<u32> = (0..len as u32).map(|i| (i * 7) % len as u32).collect();

        for kernel in available_kernels() {
            force_kernel(kernel);
            let id = |op: &str| BenchmarkId::new(format!("{op}/{kernel}"), len);
            group.bench_function(id("scan"), |bench| {
                bench.iter(|| black_box(min_plus_scan(black_box(&a), black_box(&b))))
            });
            group.bench_function(id("scan_pruned"), |bench| {
                bench.iter(|| {
                    black_box(min_plus_scan_pruned(
                        black_box(&a),
                        black_box(&b),
                        black_box(&ba),
                        black_box(&bb),
                    ))
                })
            });
            group.bench_function(id("merge"), |bench| {
                bench.iter(|| {
                    black_box(min_plus_merge(
                        black_box(&ha),
                        black_box(&a),
                        black_box(&hb),
                        black_box(&b),
                    ))
                })
            });
            group.bench_function(id("merge_pruned"), |bench| {
                bench.iter(|| {
                    black_box(min_plus_merge_pruned(
                        black_box(&ha),
                        black_box(&a),
                        black_box(&hb),
                        black_box(&b),
                        black_box(&sa),
                        black_box(&sb),
                    ))
                })
            });
            group.bench_function(id("gather"), |bench| {
                bench.iter(|| {
                    black_box(min_plus_gather(
                        black_box(&positions),
                        black_box(&a),
                        black_box(&b),
                    ))
                })
            });
        }
        force_kernel(detect_kernel());
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
