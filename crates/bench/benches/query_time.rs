//! Criterion benchmark behind Tables 2 and 4: average distance-query latency
//! of HC2L and the baseline labellings on random vertex pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc2l_bench::oracle::{build_oracle, DistanceOracle, Method};
use hc2l_roadnet::{random_pairs, standard_suite, SuiteScale, WeightMode};

fn bench_query_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_time");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for spec in standard_suite(SuiteScale::Tiny).into_iter().take(3) {
        let g = spec.build().graph(WeightMode::Distance);
        let pairs = random_pairs(g.num_vertices(), 512, 42);
        for method in Method::LABELLING {
            let oracle = build_oracle(method, &g, 1);
            group.bench_with_input(
                BenchmarkId::new(method.name(), &spec.name),
                &pairs,
                |b, pairs| {
                    b.iter(|| {
                        let mut acc = 0u128;
                        for p in pairs {
                            acc = acc.wrapping_add(oracle.distance(p.source, p.target) as u128);
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
