//! Criterion benchmark behind Figure 6: query latency stratified by query
//! distance (buckets Q1..Q10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc2l_bench::oracle::{build_oracle, DistanceOracle, Method};
use hc2l_roadnet::{distance_buckets, standard_suite, SuiteScale, WeightMode};

fn bench_distance_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_distance_buckets");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    let spec = &standard_suite(SuiteScale::Tiny)[0];
    let g = spec.build().graph(WeightMode::Distance);
    let buckets = distance_buckets(&g, 64, 1000, 7);
    for method in Method::LABELLING {
        let oracle = build_oracle(method, &g, 1);
        for (i, bucket) in buckets.buckets.iter().enumerate() {
            if bucket.len() < 8 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("Q{}", i + 1)),
                bucket,
                |b, bucket| {
                    b.iter(|| {
                        let mut acc = 0u128;
                        for p in bucket {
                            acc = acc.wrapping_add(oracle.distance(p.source, p.target) as u128);
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distance_buckets);
criterion_main!(benches);
