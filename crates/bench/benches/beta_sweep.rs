//! Criterion benchmark behind Figure 7: HC2L query latency under varying
//! balance threshold β (the cut-size statistics are printed by the `repro`
//! binary's `--figure7` mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc2l::{Hc2lConfig, Hc2lIndex};
use hc2l_roadnet::{random_pairs, standard_suite, SuiteScale, WeightMode};

fn bench_beta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_beta_sweep");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    let spec = &standard_suite(SuiteScale::Tiny)[1];
    let g = spec.build().graph(WeightMode::Distance);
    let pairs = random_pairs(g.num_vertices(), 512, 11);
    for beta in [0.15f64, 0.20, 0.25, 0.30, 0.35] {
        let index = Hc2lIndex::build(&g, Hc2lConfig::with_beta(beta));
        group.bench_with_input(
            BenchmarkId::new("HC2L", format!("beta={beta:.2}")),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0u128;
                    for p in pairs {
                        acc = acc.wrapping_add(index.query(p.source, p.target) as u128);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_beta_sweep);
criterion_main!(benches);
