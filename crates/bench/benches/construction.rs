//! Criterion benchmark behind the construction-time columns of Tables 2/4:
//! index build time of HC2L (sequential and parallel) and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc2l::{Hc2lConfig, Hc2lIndex};
use hc2l_bench::oracle::{build_oracle, DistanceOracle, Method};
use hc2l_roadnet::{standard_suite, SuiteScale, WeightMode};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for spec in standard_suite(SuiteScale::Tiny).into_iter().take(2) {
        let g = spec.build().graph(WeightMode::Distance);
        for method in Method::LABELLING {
            group.bench_with_input(BenchmarkId::new(method.name(), &spec.name), &g, |b, g| {
                b.iter(|| black_box(build_oracle(method, g, 1).label_bytes()))
            });
        }
        group.bench_with_input(BenchmarkId::new("HC2Lp", &spec.name), &g, |b, g| {
            b.iter(|| {
                let cfg = Hc2lConfig {
                    threads: 4,
                    parallel_grain: 256,
                    ..Default::default()
                };
                black_box(Hc2lIndex::build(g, cfg).stats().label_bytes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
