//! Highway decomposition: partitioning the vertex set into disjoint paths.

use serde::{Deserialize, Serialize};

use hc2l_graph::pathutil::greedy_path_decomposition;
use hc2l_graph::{Distance, Graph, Vertex};

/// One highway: a path given as a vertex sequence plus the prefix distance of
/// each vertex from the path's start ("offsets").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighwayPath {
    /// The path's vertices in order.
    pub vertices: Vec<Vertex>,
    /// `offsets[i]` — distance along the path from `vertices[0]` to
    /// `vertices[i]`.
    pub offsets: Vec<Distance>,
}

impl HighwayPath {
    /// Total length of the path.
    pub fn length(&self) -> Distance {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of vertices on the path.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` for single-vertex paths.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// The full decomposition: every vertex belongs to exactly one path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighwayDecomposition {
    /// Paths ordered by decreasing length (the PHL processing order).
    pub paths: Vec<HighwayPath>,
    /// `path_of[v]` — index of the path containing `v`.
    pub path_of: Vec<u32>,
    /// `offset_of[v]` — the vertex's offset along its own path.
    pub offset_of: Vec<Distance>,
}

impl HighwayDecomposition {
    /// Builds the decomposition by repeatedly extracting (approximately)
    /// longest shortest paths from the not-yet-covered part of the graph.
    pub fn build(g: &Graph) -> Self {
        let raw = greedy_path_decomposition(g, 2);
        let mut paths: Vec<HighwayPath> = raw
            .into_iter()
            .map(|vertices| {
                let mut offsets = Vec::with_capacity(vertices.len());
                let mut acc: Distance = 0;
                offsets.push(0);
                for w in vertices.windows(2) {
                    acc += g
                        .edge_weight(w[0], w[1])
                        .expect("decomposition produced a non-path")
                        as Distance;
                    offsets.push(acc);
                }
                HighwayPath { vertices, offsets }
            })
            .collect();
        // Longest (most "central") highways first — they become the most
        // important labels, mirroring the partial order of Example 3.2.
        paths.sort_by_key(|p| std::cmp::Reverse((p.length(), p.len())));

        let n = g.num_vertices();
        let mut path_of = vec![u32::MAX; n];
        let mut offset_of = vec![0; n];
        for (i, p) in paths.iter().enumerate() {
            for (j, &v) in p.vertices.iter().enumerate() {
                path_of[v as usize] = i as u32;
                offset_of[v as usize] = p.offsets[j];
            }
        }
        HighwayDecomposition {
            paths,
            path_of,
            offset_of,
        }
    }

    /// Number of paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::toy::{grid_graph, paper_figure1, path_graph};

    #[test]
    fn every_vertex_on_exactly_one_path() {
        let g = paper_figure1();
        let d = HighwayDecomposition::build(&g);
        let mut seen = [false; 16];
        for p in &d.paths {
            for &v in &p.vertices {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        for v in 0..16u32 {
            assert_ne!(d.path_of[v as usize], u32::MAX);
            let p = &d.paths[d.path_of[v as usize] as usize];
            let pos = p.vertices.iter().position(|&x| x == v).unwrap();
            assert_eq!(p.offsets[pos], d.offset_of[v as usize]);
        }
    }

    #[test]
    fn offsets_are_monotone_prefix_sums() {
        let g = grid_graph(5, 5);
        let d = HighwayDecomposition::build(&g);
        for p in &d.paths {
            assert_eq!(p.vertices.len(), p.offsets.len());
            for w in p.offsets.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn paths_sorted_longest_first() {
        let g = grid_graph(6, 6);
        let d = HighwayDecomposition::build(&g);
        for w in d.paths.windows(2) {
            assert!(w[0].length() >= w[1].length());
        }
    }

    #[test]
    fn single_path_graph_is_one_highway() {
        let g = path_graph(10, 2);
        let d = HighwayDecomposition::build(&g);
        assert_eq!(d.num_paths(), 1);
        assert_eq!(d.paths[0].len(), 10);
        assert_eq!(d.paths[0].length(), 18);
    }
}
