//! Pruned Highway Labelling (PHL) baseline.
//!
//! PHL [Akiba et al. 2014] decomposes a road network into vertex-disjoint
//! shortest paths ("highways") and labels every vertex with triples
//! `(path id, offset of an attachment point along the path, distance to that
//! attachment point)`. A query joins the two labels on the path id and adds
//! the along-path distance between the two attachment points
//! (Equation 2 of the paper).
//!
//! This implementation follows the structure of the original algorithm:
//!
//! * the highway decomposition is a greedy longest-shortest-path
//!   decomposition ([`hc2l_graph::pathutil::greedy_path_decomposition`]);
//! * label construction is a pruned search processed path by path in
//!   decreasing path importance; a label entry is only stored when the
//!   already-built labels cannot certify the distance (the same pruning rule
//!   as pruned landmark labelling, which keeps the labelling exact);
//! * the query evaluates Equation 2 with a merge join on path ids.

pub mod build;
pub mod decompose;
pub mod query;

pub use build::{FrozenPhlLabels, FrozenPhlLabelsRef, PhlEntry, PhlIndex, PhlStats};
pub use decompose::{HighwayDecomposition, HighwayPath};
