//! Pruned construction of the highway labelling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use hc2l_graph::{Distance, Graph, Vertex, INFINITY};

use crate::decompose::HighwayDecomposition;

/// One label entry: distance from the labelled vertex to an attachment point
/// sitting at `offset` on highway `path`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhlEntry {
    /// Highway (path) index; smaller = more important.
    pub path: u32,
    /// Offset of the attachment point along the highway.
    pub offset: Distance,
    /// Distance from the labelled vertex to the attachment point.
    pub dist: Distance,
}

/// Size statistics of a highway labelling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhlStats {
    /// Total number of label triples.
    pub total_entries: usize,
    /// Mean label size per vertex.
    pub avg_label_size: f64,
    /// Memory footprint in bytes.
    pub memory_bytes: usize,
    /// Number of highways in the decomposition.
    pub num_paths: usize,
}

/// A pruned highway labelling index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhlIndex {
    /// Per-vertex labels, sorted by (path, offset).
    labels: Vec<Vec<PhlEntry>>,
    /// The highway decomposition used.
    pub decomposition: HighwayDecomposition,
    /// Wall-clock construction time in seconds.
    pub construction_seconds: f64,
}

impl PhlIndex {
    /// Builds the index: highway decomposition followed by pruned labelling.
    pub fn build(g: &Graph) -> Self {
        let start = std::time::Instant::now();
        let decomposition = HighwayDecomposition::build(g);
        let n = g.num_vertices();
        let mut labels: Vec<Vec<PhlEntry>> = vec![Vec::new(); n];

        // Process highways in importance order; within a highway, process its
        // vertices in balanced bisection order (midpoint first, then the
        // midpoints of the two halves, and so on). Each vertex of the highway
        // acts as a hub: a pruned Dijkstra stores (path, offset_of_hub, dist)
        // entries at the vertices it reaches, skipping vertices whose distance
        // to the hub is already certified by the labels built so far (the
        // same pruning rule as pruned landmark labelling, so the labelling
        // stays exact). The bisection order makes hubs near the middle of a
        // highway cover their path-mates, keeping per-vertex labels around
        // `O(log path length)` for the on-path entries.
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<Vertex> = Vec::new();

        for (path_idx, path) in decomposition.paths.iter().enumerate() {
            let path_idx = path_idx as u32;
            for pos in bisection_order(path.vertices.len()) {
                let hub = path.vertices[pos];
                let hub_offset = path.offsets[pos];
                let mut heap: BinaryHeap<Reverse<(Distance, Vertex)>> = BinaryHeap::new();
                dist[hub as usize] = 0;
                touched.push(hub);
                heap.push(Reverse((0, hub)));
                while let Some(Reverse((d, v))) = heap.pop() {
                    if d > dist[v as usize] {
                        continue;
                    }
                    if query_labels(&labels[hub as usize], &labels[v as usize]) <= d {
                        continue;
                    }
                    labels[v as usize].push(PhlEntry {
                        path: path_idx,
                        offset: hub_offset,
                        dist: d,
                    });
                    for e in g.neighbors(v) {
                        let nd = d + e.weight as Distance;
                        if nd < dist[e.to as usize] {
                            dist[e.to as usize] = nd;
                            touched.push(e.to);
                            heap.push(Reverse((nd, e.to)));
                        }
                    }
                }
                for &v in &touched {
                    dist[v as usize] = INFINITY;
                }
                touched.clear();
            }
        }

        // Entries were appended path by path, but the bisection order means
        // offsets within a path are not monotone; sort each label so queries
        // can merge-join on (path, offset).
        for label in &mut labels {
            label.sort_by_key(|e| (e.path, e.offset, e.dist));
        }
        PhlIndex {
            labels,
            decomposition,
            construction_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Label of a vertex.
    pub fn label(&self, v: Vertex) -> &[PhlEntry] {
        &self.labels[v as usize]
    }

    /// Size statistics.
    pub fn stats(&self) -> PhlStats {
        let total: usize = self.labels.iter().map(|l| l.len()).sum();
        PhlStats {
            total_entries: total,
            avg_label_size: if self.labels.is_empty() {
                0.0
            } else {
                total as f64 / self.labels.len() as f64
            },
            memory_bytes: total * std::mem::size_of::<PhlEntry>()
                + self.labels.len() * std::mem::size_of::<Vec<PhlEntry>>(),
            num_paths: self.decomposition.num_paths(),
        }
    }
}

/// Positions `0..len` in balanced bisection order: the midpoint first, then
/// recursively the midpoints of the left and right halves. Hubs processed in
/// this order cover their own highway with logarithmically many label entries
/// per vertex.
fn bisection_order(len: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(len);
    let mut ranges = std::collections::VecDeque::new();
    if len > 0 {
        ranges.push_back((0usize, len));
    }
    while let Some((lo, hi)) = ranges.pop_front() {
        if lo >= hi {
            continue;
        }
        let mid = (lo + hi) / 2;
        order.push(mid);
        ranges.push_back((lo, mid));
        ranges.push_back((mid + 1, hi));
    }
    order
}

/// Evaluates Equation 2 over two labels: a merge join on path ids; for each
/// common path, the along-path distance between the two attachment points
/// bridges the highway segment.
pub(crate) fn query_labels(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].path.cmp(&b[j].path) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let path = a[i].path;
                let a_end = a[i..].iter().take_while(|e| e.path == path).count() + i;
                let b_end = b[j..].iter().take_while(|e| e.path == path).count() + j;
                for x in &a[i..a_end] {
                    for y in &b[j..b_end] {
                        let along = x.offset.abs_diff(y.offset);
                        let d = x.dist + y.dist + along;
                        if d < best {
                            best = d;
                        }
                    }
                }
                i = a_end;
                j = b_end;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::toy::{paper_figure1, path_graph};

    #[test]
    fn labels_are_sorted_and_nonempty() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        for v in 0..16u32 {
            let label = index.label(v);
            assert!(!label.is_empty(), "vertex {v} has an empty PHL label");
            for w in label.windows(2) {
                assert!(
                    w[0].path < w[1].path || (w[0].path == w[1].path && w[0].offset <= w[1].offset)
                );
            }
        }
    }

    #[test]
    fn own_path_entry_has_zero_distance() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        for v in 0..16u32 {
            let own_path = index.decomposition.path_of[v as usize];
            let own_offset = index.decomposition.offset_of[v as usize];
            assert!(
                index
                    .label(v)
                    .iter()
                    .any(|e| e.path == own_path && e.offset == own_offset && e.dist == 0),
                "vertex {v} lacks its own attachment entry"
            );
        }
    }

    #[test]
    fn path_graph_labels_stay_logarithmic() {
        // On a single highway, the bisection processing order keeps each
        // vertex's label to the O(log n) hubs that cover it.
        let g = path_graph(12, 3);
        let index = PhlIndex::build(&g);
        let stats = index.stats();
        assert_eq!(stats.num_paths, 1);
        assert!(
            stats.avg_label_size <= (12f64).log2() + 2.0,
            "avg label {}",
            stats.avg_label_size
        );
    }

    #[test]
    fn bisection_order_is_a_permutation() {
        for len in [0usize, 1, 2, 7, 16, 33] {
            let mut order = bisection_order(len);
            assert_eq!(order.len(), len);
            order.sort_unstable();
            assert_eq!(order, (0..len).collect::<Vec<_>>());
        }
        assert_eq!(bisection_order(5)[0], 2);
    }

    #[test]
    fn stats_accounting() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let s = index.stats();
        assert_eq!(
            s.total_entries,
            (0..16).map(|v| index.label(v).len()).sum::<usize>()
        );
        assert!(s.memory_bytes >= s.total_entries * std::mem::size_of::<PhlEntry>());
    }
}
