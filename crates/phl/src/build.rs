//! Pruned construction of the highway labelling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use hc2l_graph::flat_labels::{read_pod_slice, write_pod_slice, PodValue};
use hc2l_graph::{Distance, FlatCsr, Graph, Vertex, INFINITY};

use crate::decompose::HighwayDecomposition;

/// One label entry: the distance from the labelled vertex to an attachment
/// point sitting at `offset` along highway `path`.
///
/// Entries are stored *packed* (array-of-structs) in the frozen label arena:
/// a PHL query touches every column of every scanned entry, so interleaving
/// keeps each label to one prefetch stream — the three-parallel-columns
/// layout used by HL measured ~2x slower here (six distant streams per
/// query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhlEntry {
    /// Highway (path) index; smaller = more important.
    pub path: u32,
    /// Offset of the attachment point along the highway.
    pub offset: Distance,
    /// Distance from the labelled vertex to the attachment point.
    pub dist: Distance,
}

impl PodValue for PhlEntry {
    const WIDTH: usize = 20;
    fn write_le(self, out: &mut Vec<u8>) {
        self.path.write_le(out);
        self.offset.write_le(out);
        self.dist.write_le(out);
    }
    fn read_le(bytes: &[u8]) -> Self {
        PhlEntry {
            path: u32::read_le(bytes),
            offset: u64::read_le(&bytes[4..]),
            dist: u64::read_le(&bytes[12..]),
        }
    }
}

/// Size statistics of a highway labelling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhlStats {
    /// Total number of label triples.
    pub total_entries: usize,
    /// Mean label size per vertex.
    pub avg_label_size: f64,
    /// Memory footprint in bytes.
    pub memory_bytes: usize,
    /// Number of highways in the decomposition.
    pub num_paths: usize,
}

/// A pruned highway labelling index.
///
/// Post-build, the [`PhlEntry`] triples live packed in a frozen [`FlatCsr`]
/// arena — one contiguous block per vertex, one global allocation — sorted
/// by `(path, offset)` per vertex, so queries are merge-joins over
/// contiguous entry slices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhlIndex {
    /// Frozen per-vertex labels, sorted by (path, offset).
    labels: FlatCsr<PhlEntry>,
    /// The highway decomposition used.
    pub decomposition: HighwayDecomposition,
    /// Wall-clock construction time in seconds.
    pub construction_seconds: f64,
}

impl PhlIndex {
    /// Builds the index: highway decomposition followed by pruned labelling.
    pub fn build(g: &Graph) -> Self {
        let start = std::time::Instant::now();
        let decomposition = HighwayDecomposition::build(g);
        let n = g.num_vertices();
        // Nested construction scratch; frozen into the flat arena at the end.
        let mut labels: Vec<Vec<PhlEntry>> = vec![Vec::new(); n];

        // Process highways in importance order; within a highway, process its
        // vertices in balanced bisection order (midpoint first, then the
        // midpoints of the two halves, and so on). Each vertex of the highway
        // acts as a hub: a pruned Dijkstra stores (path, offset_of_hub, dist)
        // entries at the vertices it reaches, skipping vertices whose distance
        // to the hub is already certified by the labels built so far (the
        // same pruning rule as pruned landmark labelling, so the labelling
        // stays exact). The bisection order makes hubs near the middle of a
        // highway cover their path-mates, keeping per-vertex labels around
        // `O(log path length)` for the on-path entries.
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<Vertex> = Vec::new();

        for (path_idx, path) in decomposition.paths.iter().enumerate() {
            let path_idx = path_idx as u32;
            for pos in bisection_order(path.vertices.len()) {
                let hub = path.vertices[pos];
                let hub_offset = path.offsets[pos];
                let mut heap: BinaryHeap<Reverse<(Distance, Vertex)>> = BinaryHeap::new();
                dist[hub as usize] = 0;
                touched.push(hub);
                heap.push(Reverse((0, hub)));
                while let Some(Reverse((d, v))) = heap.pop() {
                    if d > dist[v as usize] {
                        continue;
                    }
                    if query_labels_unsorted(&labels[hub as usize], &labels[v as usize]) <= d {
                        continue;
                    }
                    labels[v as usize].push(PhlEntry {
                        path: path_idx,
                        offset: hub_offset,
                        dist: d,
                    });
                    for e in g.neighbors(v) {
                        let nd = d + e.weight as Distance;
                        if nd < dist[e.to as usize] {
                            dist[e.to as usize] = nd;
                            touched.push(e.to);
                            heap.push(Reverse((nd, e.to)));
                        }
                    }
                }
                for &v in &touched {
                    dist[v as usize] = INFINITY;
                }
                touched.clear();
            }
        }

        // Entries were appended path by path, but the bisection order means
        // offsets within a path are not monotone; sort each label so queries
        // can merge-join on (path, offset), then freeze into the flat arena.
        for label in &mut labels {
            label.sort_unstable();
        }
        PhlIndex {
            labels: FlatCsr::freeze(&labels),
            decomposition,
            construction_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.num_rows()
    }

    /// The frozen label arena.
    pub fn labels(&self) -> &FlatCsr<PhlEntry> {
        &self.labels
    }

    /// The label of vertex `v`: packed entries sorted by `(path, offset)`.
    #[inline]
    pub fn label(&self, v: Vertex) -> &[PhlEntry] {
        self.labels.row(v as usize)
    }

    /// Number of entries in vertex `v`'s label.
    #[inline]
    pub fn label_len(&self, v: Vertex) -> usize {
        self.labels.row_len(v as usize)
    }

    /// Size statistics (O(1): totals are fixed by the freeze step).
    pub fn stats(&self) -> PhlStats {
        PhlStats {
            total_entries: self.labels.total_values(),
            avg_label_size: if self.labels.num_rows() == 0 {
                0.0
            } else {
                self.labels.total_values() as f64 / self.labels.num_rows() as f64
            },
            memory_bytes: self.labels.memory_bytes(),
            num_paths: self.decomposition.num_paths(),
        }
    }

    /// Serialises the frozen index labels with the shared little-endian
    /// codec (the vendored serde stand-in is marker-only).
    pub fn labels_to_bytes(&self) -> Vec<u8> {
        let mut out = self.labels.to_bytes();
        write_pod_slice(&mut out, &[self.construction_seconds.to_bits()]);
        out
    }

    /// Reads a label arena back from [`PhlIndex::labels_to_bytes`] output.
    pub fn labels_from_bytes(bytes: &[u8]) -> Option<FlatCsr<PhlEntry>> {
        let (labels, used) = FlatCsr::<PhlEntry>::from_bytes(bytes)?;
        let (secs, _) = read_pod_slice::<u64>(&bytes[used..])?;
        if secs.len() != 1 {
            return None;
        }
        Some(labels)
    }
}

/// Positions `0..len` in balanced bisection order: the midpoint first, then
/// recursively the midpoints of the left and right halves. Hubs processed in
/// this order cover their own highway with logarithmically many label entries
/// per vertex.
fn bisection_order(len: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(len);
    let mut ranges = std::collections::VecDeque::new();
    if len > 0 {
        ranges.push_back((0usize, len));
    }
    while let Some((lo, hi)) = ranges.pop_front() {
        if lo >= hi {
            continue;
        }
        let mid = (lo + hi) / 2;
        order.push(mid);
        ranges.push_back((lo, mid));
        ranges.push_back((mid + 1, hi));
    }
    order
}

/// Construction-time variant of [`query_labels`]: labels are only sorted at
/// freeze time (entries arrive in bisection order), so same-path groups are
/// combined with the order-insensitive all-pairs product.
fn query_labels_unsorted(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i].path, b[j].path);
        if x == y {
            let a_end = a[i..].iter().take_while(|e| e.path == x).count() + i;
            let b_end = b[j..].iter().take_while(|e| e.path == x).count() + j;
            let group_b = &b[j..b_end];
            for ea in &a[i..a_end] {
                for eb in group_b {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            }
            i = a_end;
            j = b_end;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
    best.min(INFINITY)
}

/// Evaluates Equation 2 over two *frozen* labels (sorted by `(path,
/// offset)`): a merge join on path ids; for each common path the
/// attachment-point groups are combined, bridging the highway segment with
/// the along-path distance.
///
/// Singleton groups (the common case) take a direct branch-free
/// min-reduction; larger groups use [`group_min`], a linear prefix-min sweep
/// instead of the quadratic all-pairs product.
pub(crate) fn query_labels(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i].path, b[j].path);
        if x == y {
            let a_end = a[i..].iter().take_while(|e| e.path == x).count() + i;
            let b_end = b[j..].iter().take_while(|e| e.path == x).count() + j;
            let (ga, gb) = (&a[i..a_end], &b[j..b_end]);
            if ga.len() == 1 {
                let ea = ga[0];
                for eb in gb {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else if gb.len() == 1 {
                let eb = gb[0];
                for ea in ga {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else {
                best = best.min(group_min(ga, gb));
            }
            i = a_end;
            j = b_end;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
    best.min(INFINITY)
}

/// Linear-time minimum of `ea.dist + eb.dist + |ea.offset - eb.offset|` over
/// all pairs of two same-path groups, both sorted by offset.
///
/// For a pair with `ea.offset <= eb.offset` the cost is
/// `(ea.dist - ea.offset) + (eb.dist + eb.offset)`, so a merged sweep in
/// offset order only needs the running minimum of `dist - offset` over the
/// *other* group's already-visited prefix — `O(|A| + |B|)` instead of the
/// `O(|A| * |B|)` all-pairs product. Intermediate values can go negative, so
/// the sweep runs in `i128` (every operand is below `2^62`, far from
/// overflow).
fn group_min(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best: i128 = INFINITY as i128;
    // Running min of dist - offset over the visited prefix of each group.
    let (mut min_a, mut min_b): (i128, i128) = (i128::MAX / 2, i128::MAX / 2);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        // Pop the smaller offset next; on ties pop from `a` first so the tied
        // `b` element sees it in `min_a` (each pair must be seen once with
        // the later element as the sweep point).
        let take_a = j >= b.len() || (i < a.len() && a[i].offset <= b[j].offset);
        if take_a {
            let e = a[i];
            i += 1;
            best = best.min(e.dist as i128 + e.offset as i128 + min_b);
            min_a = min_a.min(e.dist as i128 - e.offset as i128);
        } else {
            let e = b[j];
            j += 1;
            best = best.min(e.dist as i128 + e.offset as i128 + min_a);
            min_b = min_b.min(e.dist as i128 - e.offset as i128);
        }
    }
    best.min(INFINITY as i128) as Distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::toy::{paper_figure1, path_graph};

    #[test]
    fn labels_are_sorted_and_nonempty() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        for v in 0..16u32 {
            let label = index.label(v);
            assert!(!label.is_empty(), "vertex {v} has an empty PHL label");
            for w in label.windows(2) {
                assert!(
                    w[0].path < w[1].path || (w[0].path == w[1].path && w[0].offset <= w[1].offset)
                );
            }
        }
    }

    #[test]
    fn own_path_entry_has_zero_distance() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        for v in 0..16u32 {
            let own_path = index.decomposition.path_of[v as usize];
            let own_offset = index.decomposition.offset_of[v as usize];
            assert!(
                index
                    .label(v)
                    .iter()
                    .any(|e| e.path == own_path && e.offset == own_offset && e.dist == 0),
                "vertex {v} lacks its own attachment entry"
            );
        }
    }

    #[test]
    fn path_graph_labels_stay_logarithmic() {
        // On a single highway, the bisection processing order keeps each
        // vertex's label to the O(log n) hubs that cover it.
        let g = path_graph(12, 3);
        let index = PhlIndex::build(&g);
        let stats = index.stats();
        assert_eq!(stats.num_paths, 1);
        assert!(
            stats.avg_label_size <= (12f64).log2() + 2.0,
            "avg label {}",
            stats.avg_label_size
        );
    }

    #[test]
    fn bisection_order_is_a_permutation() {
        for len in [0usize, 1, 2, 7, 16, 33] {
            let mut order = bisection_order(len);
            assert_eq!(order.len(), len);
            order.sort_unstable();
            assert_eq!(order, (0..len).collect::<Vec<_>>());
        }
        assert_eq!(bisection_order(5)[0], 2);
    }

    #[test]
    fn group_min_matches_all_pairs_product() {
        // Seeded pseudo-random same-path groups, sorted by offset; the
        // linear sweep must agree with the quadratic reference on every
        // case, including ties and singletons.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let make = |next: &mut dyn FnMut() -> u64| {
                let len = 1 + (next() % 6) as usize;
                let mut g: Vec<PhlEntry> = (0..len)
                    .map(|_| PhlEntry {
                        path: 0,
                        offset: next() % 50,
                        dist: next() % 100,
                    })
                    .collect();
                g.sort_unstable();
                g
            };
            let ga = make(&mut next);
            let gb = make(&mut next);
            let brute = ga
                .iter()
                .flat_map(|ea| {
                    gb.iter()
                        .map(move |eb| ea.dist + eb.dist + ea.offset.abs_diff(eb.offset))
                })
                .min()
                .unwrap();
            assert_eq!(group_min(&ga, &gb), brute, "ga={ga:?} gb={gb:?}");
        }
    }

    #[test]
    fn stats_accounting() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let s = index.stats();
        assert_eq!(
            s.total_entries,
            (0..16).map(|v| index.label_len(v)).sum::<usize>()
        );
        assert!(s.memory_bytes >= s.total_entries * std::mem::size_of::<PhlEntry>());
    }
}
