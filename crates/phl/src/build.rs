//! Pruned construction of the highway labelling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use hc2l_graph::container::{
    method_tag, Container, ContainerWriter, DecodeError, MetaReader, MetaWriter, PersistentIndex,
    Pod,
};
use hc2l_graph::flat_labels::{read_pod_slice, write_pod_slice, Borrowed, Owned, PodValue, Store};
use hc2l_graph::{
    dist_add, suffix_block_bounds, Distance, FlatCsr, Graph, Vertex, CUT_BOUND_BLOCK, INFINITY,
};

use crate::decompose::HighwayDecomposition;

/// One label entry: the distance from the labelled vertex to an attachment
/// point sitting at `offset` along highway `path`.
///
/// Entries are stored *packed* (array-of-structs) in the frozen label arena:
/// a PHL query touches every column of every scanned entry, so interleaving
/// keeps each label to one prefetch stream — the three-parallel-columns
/// layout used by HL measured ~2x slower here (six distant streams per
/// query).
///
/// The struct is `repr(C)` with an explicit padding word so that its
/// in-memory layout (24 bytes, no implicit padding) equals its on-disk
/// little-endian encoding — that is what lets a loaded container section be
/// viewed as `&[PhlEntry]` without decoding (the [`Pod`] contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(C)]
pub struct PhlEntry {
    /// Highway (path) index; smaller = more important.
    pub path: u32,
    /// Explicit padding keeping the struct layout identical to its encoding
    /// (always zero; ordered after `path` so derived comparisons are
    /// unaffected).
    pad: u32,
    /// Offset of the attachment point along the highway.
    pub offset: Distance,
    /// Distance from the labelled vertex to the attachment point.
    pub dist: Distance,
}

impl PhlEntry {
    /// A label entry for highway `path`, attachment offset `offset`,
    /// distance `dist`.
    pub fn new(path: u32, offset: Distance, dist: Distance) -> Self {
        PhlEntry {
            path,
            pad: 0,
            offset,
            dist,
        }
    }
}

impl PodValue for PhlEntry {
    const WIDTH: usize = 24;
    fn write_le(self, out: &mut Vec<u8>) {
        self.path.write_le(out);
        self.pad.write_le(out);
        self.offset.write_le(out);
        self.dist.write_le(out);
    }
    fn read_le(bytes: &[u8]) -> Self {
        PhlEntry {
            path: u32::read_le(bytes),
            pad: u32::read_le(&bytes[4..]),
            offset: u64::read_le(&bytes[8..]),
            dist: u64::read_le(&bytes[16..]),
        }
    }
}

// SAFETY: `repr(C)` with fields u32, u32, u64, u64 — size 24 == WIDTH, no
// implicit padding, every bit pattern valid, and `write_le` emits the fields
// in declaration order, i.e. exactly the little-endian memory image.
unsafe impl Pod for PhlEntry {}

/// Size statistics of a highway labelling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhlStats {
    /// Total number of label triples.
    pub total_entries: usize,
    /// Mean label size per vertex.
    pub avg_label_size: f64,
    /// Memory footprint in bytes.
    pub memory_bytes: usize,
    /// Number of highways in the decomposition.
    pub num_paths: usize,
}

/// Container section tags of the PHL backend.
mod sec {
    /// Scalar metadata blob.
    pub const META: u32 = 0;
    /// Packed [`super::PhlEntry`] arena (24-byte records).
    pub const ENTRIES: u32 = 1;
    /// Per-vertex CSR offsets (`u32`).
    pub const OFFSETS: u32 = 2;
    /// Optional suffix cut-bound arena (`u64`, format v2+): per-block
    /// suffix minima of each label's `dist` column (see
    /// `hc2l_graph::kernels::suffix_block_bounds`).
    pub const BOUNDS: u32 = 3;
    /// Per-vertex starts into [`BOUNDS`] (`u32`, `num_vertices + 1`
    /// entries); present exactly when [`BOUNDS`] is.
    pub const BOUND_OFFSETS: u32 = 4;
}

/// The frozen, queryable state of a pruned highway labelling: the packed
/// [`PhlEntry`] triples in a [`FlatCsr`] arena, sorted by `(path, offset)`
/// per vertex.
///
/// Generic over the [`Store`]: owned after a build, borrowed (zero-copy)
/// over a loaded container's sections.
pub struct FrozenPhlLabels<S: Store = Owned> {
    labels: FlatCsr<PhlEntry, S>,
    /// Optional cut-bound arena (format v2+): per-block suffix minima of
    /// each label's `dist` column, one bound per [`CUT_BOUND_BLOCK`]
    /// entries. Derived data — rebuildable from `labels` and excluded from
    /// equality.
    suffix_bounds: S::Slice<Distance>,
    /// Per-vertex starts into `suffix_bounds` (`num_vertices + 1` entries
    /// when bounds are present, empty otherwise).
    bound_offsets: S::Slice<u32>,
}

/// A [`FrozenPhlLabels`] borrowing its arena from a loaded container.
pub type FrozenPhlLabelsRef<'a> = FrozenPhlLabels<Borrowed<'a>>;

impl<S: Store> FrozenPhlLabels<S> {
    /// Wraps a frozen label arena (trusted: the build path sorts before
    /// freezing). Carries no cut bounds; call
    /// [`FrozenPhlLabels::ensure_bounds`] (owned stores) to derive them.
    pub fn new(labels: FlatCsr<PhlEntry, S>) -> Self {
        FrozenPhlLabels {
            labels,
            suffix_bounds: S::empty_slice(),
            bound_offsets: S::empty_slice(),
        }
    }

    /// Wraps a *loaded* arena, validating the per-vertex `(path, offset)`
    /// sort order the query merge-join relies on — an unsorted label would
    /// silently skip matching highways, so a crafted file fails here with a
    /// typed error instead.
    pub fn from_sorted(labels: FlatCsr<PhlEntry, S>) -> Result<Self, DecodeError> {
        for v in 0..labels.num_rows() {
            if labels.row(v).windows(2).any(|w| w[0] > w[1]) {
                return Err(DecodeError::Malformed(
                    "PHL label not sorted by (path, offset)",
                ));
            }
        }
        Ok(FrozenPhlLabels::new(labels))
    }

    /// Attaches loaded cut bounds, validating them against a full recompute
    /// — a tampered bound could silently *mis-prune* (wrong answers), so any
    /// mismatch is a typed [`DecodeError::Malformed`] instead.
    pub fn with_bounds(
        self,
        suffix_bounds: S::Slice<Distance>,
        bound_offsets: S::Slice<u32>,
    ) -> Result<Self, DecodeError> {
        let (expect_bounds, expect_offsets) = self.computed_bounds();
        if *suffix_bounds != expect_bounds[..] || *bound_offsets != expect_offsets[..] {
            return Err(DecodeError::Malformed(
                "PHL cut bounds do not match the label arena",
            ));
        }
        Ok(FrozenPhlLabels {
            labels: self.labels,
            suffix_bounds,
            bound_offsets,
        })
    }

    /// Recomputes the suffix cut bounds from the label arena: per vertex,
    /// the per-block suffix minima of its `dist` column.
    pub fn computed_bounds(&self) -> (Vec<Distance>, Vec<u32>) {
        let n = self.labels.num_rows();
        let mut bounds = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dists: Vec<Distance> = Vec::new();
        offsets.push(0);
        for v in 0..n {
            dists.clear();
            dists.extend(self.labels.row(v).iter().map(|e| e.dist));
            suffix_block_bounds(&dists, &mut bounds);
            offsets.push(bounds.len() as u32);
        }
        (bounds, offsets)
    }

    /// Whether the arena carries cut bounds (pruned merge-join usable).
    #[inline]
    pub fn has_bounds(&self) -> bool {
        self.bound_offsets.len() == self.labels.num_rows() + 1
    }

    /// Suffix cut bounds of vertex `v`'s `dist` column (only meaningful
    /// when [`FrozenPhlLabels::has_bounds`]).
    #[inline]
    pub fn label_bounds(&self, v: Vertex) -> &[Distance] {
        let lo = self.bound_offsets[v as usize] as usize;
        let hi = self.bound_offsets[v as usize + 1] as usize;
        &self.suffix_bounds[lo..hi]
    }

    /// The bound arenas as plain slices (for serialisation).
    pub fn bounds_parts(&self) -> (&[Distance], &[u32]) {
        (&self.suffix_bounds, &self.bound_offsets)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.num_rows()
    }

    /// The label of vertex `v`: packed entries sorted by `(path, offset)`.
    #[inline]
    pub fn label(&self, v: Vertex) -> &[PhlEntry] {
        self.labels.row(v as usize)
    }

    /// Number of entries in vertex `v`'s label.
    #[inline]
    pub fn label_len(&self, v: Vertex) -> usize {
        self.labels.row_len(v as usize)
    }

    /// The underlying arena.
    pub fn arena(&self) -> &FlatCsr<PhlEntry, S> {
        &self.labels
    }
}

impl FrozenPhlLabels<Owned> {
    /// Derives the suffix cut bounds in place if absent — used after a
    /// build and when loading pre-bounds (format v1) container files.
    pub fn ensure_bounds(&mut self) {
        if !self.has_bounds() {
            let (bounds, offsets) = self.computed_bounds();
            self.suffix_bounds = bounds;
            self.bound_offsets = offsets;
        }
    }
}

impl<'a> FrozenPhlLabels<Borrowed<'a>> {
    /// Zero-copy view of the labelling stored in a loaded container
    /// (little-endian hosts; see `Container::section_pods`).
    ///
    /// A borrowed view cannot materialise bounds of its own, so pre-bounds
    /// files load with pruning off (answers are identical either way).
    pub fn from_container(c: &'a Container) -> Result<Self, DecodeError> {
        let labels = FrozenPhlLabels::from_sorted(FlatCsr::from_parts(
            c.section_pods::<PhlEntry>(sec::ENTRIES)?,
            c.section_pods::<u32>(sec::OFFSETS)?,
        )?)?;
        if c.has_section(sec::BOUNDS) && c.has_section(sec::BOUND_OFFSETS) {
            labels.with_bounds(
                c.section_pods::<u64>(sec::BOUNDS)?,
                c.section_pods::<u32>(sec::BOUND_OFFSETS)?,
            )
        } else {
            Ok(labels)
        }
    }
}

impl<S: Store> std::fmt::Debug for FrozenPhlLabels<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenPhlLabels")
            .field("labels", &self.labels)
            .field("has_bounds", &self.has_bounds())
            .finish()
    }
}

impl<S: Store> Clone for FrozenPhlLabels<S>
where
    FlatCsr<PhlEntry, S>: Clone,
    S::Slice<Distance>: Clone,
    S::Slice<u32>: Clone,
{
    fn clone(&self) -> Self {
        FrozenPhlLabels {
            labels: self.labels.clone(),
            suffix_bounds: self.suffix_bounds.clone(),
            bound_offsets: self.bound_offsets.clone(),
        }
    }
}

/// A pruned highway labelling index.
///
/// Post-build, the [`PhlEntry`] triples live packed in the frozen
/// [`FrozenPhlLabels`] arena — one contiguous block per vertex, one global
/// allocation — sorted by `(path, offset)` per vertex, so queries are
/// merge-joins over contiguous entry slices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhlIndex {
    /// The frozen labels queries run on.
    frozen: FrozenPhlLabels,
    /// The highway decomposition used — construction state kept for
    /// diagnostics on built indexes; `None` after a load (queries never
    /// touch it, every queried fact lives in the frozen labels).
    pub decomposition: Option<HighwayDecomposition>,
    /// Number of highways the labelling was built from.
    num_paths: usize,
    /// Wall-clock construction time in seconds.
    pub construction_seconds: f64,
}

impl PhlIndex {
    /// Builds the index: highway decomposition followed by pruned labelling.
    pub fn build(g: &Graph) -> Self {
        let start = std::time::Instant::now();
        let decomposition = HighwayDecomposition::build(g);
        let n = g.num_vertices();
        // Nested construction scratch; frozen into the flat arena at the end.
        let mut labels: Vec<Vec<PhlEntry>> = vec![Vec::new(); n];

        // Process highways in importance order; within a highway, process its
        // vertices in balanced bisection order (midpoint first, then the
        // midpoints of the two halves, and so on). Each vertex of the highway
        // acts as a hub: a pruned Dijkstra stores (path, offset_of_hub, dist)
        // entries at the vertices it reaches, skipping vertices whose distance
        // to the hub is already certified by the labels built so far (the
        // same pruning rule as pruned landmark labelling, so the labelling
        // stays exact). The bisection order makes hubs near the middle of a
        // highway cover their path-mates, keeping per-vertex labels around
        // `O(log path length)` for the on-path entries.
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<Vertex> = Vec::new();

        for (path_idx, path) in decomposition.paths.iter().enumerate() {
            let path_idx = path_idx as u32;
            for pos in bisection_order(path.vertices.len()) {
                let hub = path.vertices[pos];
                let hub_offset = path.offsets[pos];
                let mut heap: BinaryHeap<Reverse<(Distance, Vertex)>> = BinaryHeap::new();
                dist[hub as usize] = 0;
                touched.push(hub);
                heap.push(Reverse((0, hub)));
                while let Some(Reverse((d, v))) = heap.pop() {
                    if d > dist[v as usize] {
                        continue;
                    }
                    if query_labels_unsorted(&labels[hub as usize], &labels[v as usize]) <= d {
                        continue;
                    }
                    labels[v as usize].push(PhlEntry::new(path_idx, hub_offset, d));
                    for e in g.neighbors(v) {
                        let nd = d + e.weight as Distance;
                        if nd < dist[e.to as usize] {
                            dist[e.to as usize] = nd;
                            touched.push(e.to);
                            heap.push(Reverse((nd, e.to)));
                        }
                    }
                }
                for &v in &touched {
                    dist[v as usize] = INFINITY;
                }
                touched.clear();
            }
        }

        // Entries were appended path by path, but the bisection order means
        // offsets within a path are not monotone; sort each label so queries
        // can merge-join on (path, offset), then freeze into the flat arena.
        for label in &mut labels {
            label.sort_unstable();
        }
        let num_paths = decomposition.num_paths();
        let mut frozen = FrozenPhlLabels::new(FlatCsr::freeze(&labels));
        frozen.ensure_bounds();
        PhlIndex {
            frozen,
            decomposition: Some(decomposition),
            num_paths,
            construction_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// The frozen queryable state.
    pub fn frozen(&self) -> &FrozenPhlLabels {
        &self.frozen
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.frozen.num_vertices()
    }

    /// The frozen label arena.
    pub fn labels(&self) -> &FlatCsr<PhlEntry> {
        self.frozen.arena()
    }

    /// The label of vertex `v`: packed entries sorted by `(path, offset)`.
    #[inline]
    pub fn label(&self, v: Vertex) -> &[PhlEntry] {
        self.frozen.label(v)
    }

    /// Number of entries in vertex `v`'s label.
    #[inline]
    pub fn label_len(&self, v: Vertex) -> usize {
        self.frozen.label_len(v)
    }

    /// Size statistics (O(1): totals are fixed by the freeze step).
    pub fn stats(&self) -> PhlStats {
        let labels = self.frozen.arena();
        PhlStats {
            total_entries: labels.total_values(),
            avg_label_size: if labels.num_rows() == 0 {
                0.0
            } else {
                labels.total_values() as f64 / labels.num_rows() as f64
            },
            memory_bytes: labels.memory_bytes(),
            num_paths: self.num_paths,
        }
    }

    /// Serialises the frozen index labels with the shared little-endian
    /// codec (the vendored serde stand-in is marker-only).
    pub fn labels_to_bytes(&self) -> Vec<u8> {
        let mut out = self.frozen.arena().to_bytes();
        write_pod_slice(&mut out, &[self.construction_seconds.to_bits()]);
        out
    }

    /// Reads a label arena back from [`PhlIndex::labels_to_bytes`] output.
    pub fn labels_from_bytes(bytes: &[u8]) -> Result<FlatCsr<PhlEntry>, DecodeError> {
        let (labels, used) = FlatCsr::<PhlEntry>::from_bytes(bytes)?;
        let (secs, _) = read_pod_slice::<u64>(&bytes[used..])?;
        if secs.len() != 1 {
            return Err(DecodeError::Malformed("expected one timing field"));
        }
        Ok(labels)
    }
}

impl PersistentIndex for PhlIndex {
    const METHOD_TAG: u32 = method_tag::PHL;

    fn write_sections(&self, w: &mut ContainerWriter) {
        let mut meta = MetaWriter::new();
        meta.u64(self.num_paths as u64)
            .f64(self.construction_seconds);
        w.push_section(sec::META, meta.finish());
        let (entries, offsets) = self.frozen.arena().parts();
        w.push_pods(sec::ENTRIES, entries);
        w.push_pods(sec::OFFSETS, offsets);
        if self.frozen.has_bounds() {
            let (bounds, bound_offsets) = self.frozen.bounds_parts();
            w.push_pods(sec::BOUNDS, bounds);
            w.push_pods(sec::BOUND_OFFSETS, bound_offsets);
        }
    }

    fn read_sections(c: &Container) -> Result<Self, DecodeError> {
        let mut meta = MetaReader::new(c.section(sec::META)?);
        let num_paths = meta.usize()?;
        let construction_seconds = meta.f64()?;
        meta.finish()?;
        let labels = FlatCsr::from_parts(
            c.read_pod_vec::<PhlEntry>(sec::ENTRIES)?,
            c.read_pod_vec::<u32>(sec::OFFSETS)?,
        )?;
        let mut frozen = FrozenPhlLabels::from_sorted(labels)?;
        if c.has_section(sec::BOUNDS) && c.has_section(sec::BOUND_OFFSETS) {
            frozen = frozen.with_bounds(
                c.read_pod_vec::<u64>(sec::BOUNDS)?,
                c.read_pod_vec::<u32>(sec::BOUND_OFFSETS)?,
            )?;
        } else {
            // Pre-bounds (format v1) file: derive the bounds so queries on
            // the loaded index prune exactly like on a fresh build.
            frozen.ensure_bounds();
        }
        Ok(PhlIndex {
            frozen,
            decomposition: None,
            num_paths,
            construction_seconds,
        })
    }
}

/// Positions `0..len` in balanced bisection order: the midpoint first, then
/// recursively the midpoints of the left and right halves. Hubs processed in
/// this order cover their own highway with logarithmically many label entries
/// per vertex.
fn bisection_order(len: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(len);
    let mut ranges = std::collections::VecDeque::new();
    if len > 0 {
        ranges.push_back((0usize, len));
    }
    while let Some((lo, hi)) = ranges.pop_front() {
        if lo >= hi {
            continue;
        }
        let mid = (lo + hi) / 2;
        order.push(mid);
        ranges.push_back((lo, mid));
        ranges.push_back((mid + 1, hi));
    }
    order
}

/// Construction-time variant of [`query_labels`]: labels are only sorted at
/// freeze time (entries arrive in bisection order), so same-path groups are
/// combined with the order-insensitive all-pairs product.
fn query_labels_unsorted(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i].path, b[j].path);
        if x == y {
            let a_end = a[i..].iter().take_while(|e| e.path == x).count() + i;
            let b_end = b[j..].iter().take_while(|e| e.path == x).count() + j;
            let group_b = &b[j..b_end];
            for ea in &a[i..a_end] {
                for eb in group_b {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            }
            i = a_end;
            j = b_end;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
    best.min(INFINITY)
}

/// Evaluates Equation 2 over two *frozen* labels (sorted by `(path,
/// offset)`): a merge join on path ids; for each common path the
/// attachment-point groups are combined, bridging the highway segment with
/// the along-path distance.
///
/// Singleton groups (the common case) take a direct branch-free
/// min-reduction; larger groups use [`group_min`], a linear prefix-min sweep
/// instead of the quadratic all-pairs product.
pub(crate) fn query_labels(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i].path, b[j].path);
        if x == y {
            let a_end = a[i..].iter().take_while(|e| e.path == x).count() + i;
            let b_end = b[j..].iter().take_while(|e| e.path == x).count() + j;
            let (ga, gb) = (&a[i..a_end], &b[j..b_end]);
            if ga.len() == 1 {
                let ea = ga[0];
                for eb in gb {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else if gb.len() == 1 {
                let eb = gb[0];
                for ea in ga {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else {
                best = best.min(group_min(ga, gb));
            }
            i = a_end;
            j = b_end;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
    best.min(INFINITY)
}

/// [`query_labels`] with cut-bound early exit: `sa`/`sb` are the per-block
/// suffix minima of the two labels' `dist` columns. Any pair at or beyond
/// the current merge positions costs at least
/// `sa[i / B] + sb[j / B]` (the offset-bridging term only adds to it), so
/// once that sum cannot beat the running best the sweep stops — bit-identical
/// to the full merge-join, it just skips work that provably cannot win.
///
/// The bound comparison uses the saturating [`dist_add`]: both operands can
/// be [`INFINITY`], whose plain sum would exceed the `< 2^63` invariant the
/// kernels rely on.
pub(crate) fn query_labels_pruned(
    a: &[PhlEntry],
    b: &[PhlEntry],
    sa: &[Distance],
    sb: &[Distance],
) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    // The suffix bound is re-tested only when a cursor crosses into a new
    // block: a per-iteration test costs two loads plus an add on every merge
    // step, which is more than the early exit saves on typical labels.
    let (mut check_i, mut check_j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if i >= check_i || j >= check_j {
            if dist_add(sa[i / CUT_BOUND_BLOCK], sb[j / CUT_BOUND_BLOCK]) >= best {
                break;
            }
            check_i = (i / CUT_BOUND_BLOCK + 1) * CUT_BOUND_BLOCK;
            check_j = (j / CUT_BOUND_BLOCK + 1) * CUT_BOUND_BLOCK;
        }
        let (x, y) = (a[i].path, b[j].path);
        if x == y {
            let a_end = a[i..].iter().take_while(|e| e.path == x).count() + i;
            let b_end = b[j..].iter().take_while(|e| e.path == x).count() + j;
            let (ga, gb) = (&a[i..a_end], &b[j..b_end]);
            if ga.len() == 1 {
                let ea = ga[0];
                for eb in gb {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else if gb.len() == 1 {
                let eb = gb[0];
                for ea in ga {
                    best = best.min(ea.dist + eb.dist + ea.offset.abs_diff(eb.offset));
                }
            } else {
                best = best.min(group_min(ga, gb));
            }
            i = a_end;
            j = b_end;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
    best.min(INFINITY)
}

/// Linear-time minimum of `ea.dist + eb.dist + |ea.offset - eb.offset|` over
/// all pairs of two same-path groups, both sorted by offset.
///
/// For a pair with `ea.offset <= eb.offset` the cost is
/// `(ea.dist - ea.offset) + (eb.dist + eb.offset)`, so a merged sweep in
/// offset order only needs the running minimum of `dist - offset` over the
/// *other* group's already-visited prefix — `O(|A| + |B|)` instead of the
/// `O(|A| * |B|)` all-pairs product. Intermediate values can go negative, so
/// the sweep runs in `i128` (every operand is below `2^62`, far from
/// overflow).
fn group_min(a: &[PhlEntry], b: &[PhlEntry]) -> Distance {
    let mut best: i128 = INFINITY as i128;
    // Running min of dist - offset over the visited prefix of each group.
    let (mut min_a, mut min_b): (i128, i128) = (i128::MAX / 2, i128::MAX / 2);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        // Pop the smaller offset next; on ties pop from `a` first so the tied
        // `b` element sees it in `min_a` (each pair must be seen once with
        // the later element as the sweep point).
        let take_a = j >= b.len() || (i < a.len() && a[i].offset <= b[j].offset);
        if take_a {
            let e = a[i];
            i += 1;
            best = best.min(e.dist as i128 + e.offset as i128 + min_b);
            min_a = min_a.min(e.dist as i128 - e.offset as i128);
        } else {
            let e = b[j];
            j += 1;
            best = best.min(e.dist as i128 + e.offset as i128 + min_a);
            min_b = min_b.min(e.dist as i128 - e.offset as i128);
        }
    }
    best.min(INFINITY as i128) as Distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::toy::{paper_figure1, path_graph};

    #[test]
    fn labels_are_sorted_and_nonempty() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        for v in 0..16u32 {
            let label = index.label(v);
            assert!(!label.is_empty(), "vertex {v} has an empty PHL label");
            for w in label.windows(2) {
                assert!(
                    w[0].path < w[1].path || (w[0].path == w[1].path && w[0].offset <= w[1].offset)
                );
            }
        }
    }

    #[test]
    fn own_path_entry_has_zero_distance() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let decomposition = index.decomposition.as_ref().expect("built index");
        for v in 0..16u32 {
            let own_path = decomposition.path_of[v as usize];
            let own_offset = decomposition.offset_of[v as usize];
            assert!(
                index
                    .label(v)
                    .iter()
                    .any(|e| e.path == own_path && e.offset == own_offset && e.dist == 0),
                "vertex {v} lacks its own attachment entry"
            );
        }
    }

    #[test]
    fn path_graph_labels_stay_logarithmic() {
        // On a single highway, the bisection processing order keeps each
        // vertex's label to the O(log n) hubs that cover it.
        let g = path_graph(12, 3);
        let index = PhlIndex::build(&g);
        let stats = index.stats();
        assert_eq!(stats.num_paths, 1);
        assert!(
            stats.avg_label_size <= (12f64).log2() + 2.0,
            "avg label {}",
            stats.avg_label_size
        );
    }

    #[test]
    fn bisection_order_is_a_permutation() {
        for len in [0usize, 1, 2, 7, 16, 33] {
            let mut order = bisection_order(len);
            assert_eq!(order.len(), len);
            order.sort_unstable();
            assert_eq!(order, (0..len).collect::<Vec<_>>());
        }
        assert_eq!(bisection_order(5)[0], 2);
    }

    #[test]
    fn group_min_matches_all_pairs_product() {
        // Seeded pseudo-random same-path groups, sorted by offset; the
        // linear sweep must agree with the quadratic reference on every
        // case, including ties and singletons.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let make = |next: &mut dyn FnMut() -> u64| {
                let len = 1 + (next() % 6) as usize;
                let mut g: Vec<PhlEntry> = (0..len)
                    .map(|_| PhlEntry::new(0, next() % 50, next() % 100))
                    .collect();
                g.sort_unstable();
                g
            };
            let ga = make(&mut next);
            let gb = make(&mut next);
            let brute = ga
                .iter()
                .flat_map(|ea| {
                    gb.iter()
                        .map(move |eb| ea.dist + eb.dist + ea.offset.abs_diff(eb.offset))
                })
                .min()
                .unwrap();
            assert_eq!(group_min(&ga, &gb), brute, "ga={ga:?} gb={gb:?}");
        }
    }

    #[test]
    fn stats_accounting() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let s = index.stats();
        assert_eq!(
            s.total_entries,
            (0..16).map(|v| index.label_len(v)).sum::<usize>()
        );
        assert!(s.memory_bytes >= s.total_entries * std::mem::size_of::<PhlEntry>());
    }

    #[test]
    fn entry_layout_is_pod() {
        // The Pod contract FrozenPhlLabelsRef relies on: in-memory size ==
        // encoded width.
        assert_eq!(std::mem::size_of::<PhlEntry>(), PhlEntry::WIDTH);
        let e = PhlEntry::new(3, 17, 99);
        let mut bytes = Vec::new();
        e.write_le(&mut bytes);
        assert_eq!(bytes.len(), PhlEntry::WIDTH);
        assert_eq!(PhlEntry::read_le(&bytes), e);
    }

    #[test]
    fn container_round_trip_and_borrowed_view_agree() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let mut w = ContainerWriter::new(PhlIndex::METHOD_TAG);
        index.write_sections(&mut w);
        let c = Container::from_bytes(&w.finish()).unwrap();
        let back = PhlIndex::read_sections(&c).unwrap();
        assert!(back.decomposition.is_none());
        assert_eq!(back.stats().num_paths, index.stats().num_paths);
        let view = FrozenPhlLabels::from_container(&c).unwrap();
        for s in 0..16u32 {
            for t in 0..16u32 {
                assert_eq!(back.query(s, t), index.query(s, t));
                assert_eq!(view.query(s, t), index.query(s, t));
            }
        }
    }
}
