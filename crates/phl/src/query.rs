//! Distance queries over highway labels (Equation 2 of the paper).
//!
//! The merge-join is implemented once on the [`FrozenPhlLabels`] view, so it
//! runs identically on an owned, freshly built index and on a borrowed
//! zero-copy view of a loaded index container.

use hc2l_graph::flat_labels::Store;
use hc2l_graph::{Distance, QueryStats, Vertex};

use crate::build::{query_labels, query_labels_pruned, FrozenPhlLabels, PhlIndex};

impl<S: Store> FrozenPhlLabels<S> {
    /// Exact distance query over the frozen packed-entry arena. When the
    /// arena carries suffix cut bounds, the merge-join stops as soon as no
    /// remaining entry pair can beat the running best (bit-identical to the
    /// full sweep).
    #[inline]
    pub fn query(&self, s: Vertex, t: Vertex) -> Distance {
        if s == t {
            return 0;
        }
        if self.has_bounds() {
            query_labels_pruned(
                self.label(s),
                self.label(t),
                self.label_bounds(s),
                self.label_bounds(t),
            )
        } else {
            query_labels(self.label(s), self.label(t))
        }
    }

    /// Exact distance query with scan statistics. PHL, like HL, always scans
    /// both labels in full, so `hubs_scanned` is the sum of both label
    /// lengths.
    pub fn query_with_stats(&self, s: Vertex, t: Vertex) -> (Distance, QueryStats) {
        let distance = self.query(s, t);
        let scanned = if s == t {
            0
        } else {
            self.label_len(s) + self.label_len(t)
        };
        (distance, QueryStats::scanned(scanned))
    }

    /// Batched one-to-many query into a caller-provided buffer: distances
    /// from `s` to every vertex in `targets`, resolving the source label
    /// slices once for the whole batch.
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        let label_s = self.label(s);
        out.clear();
        if self.has_bounds() {
            let bounds_s = self.label_bounds(s);
            out.extend(targets.iter().map(|&t| {
                if s == t {
                    0
                } else {
                    query_labels_pruned(label_s, self.label(t), bounds_s, self.label_bounds(t))
                }
            }));
        } else {
            out.extend(targets.iter().map(|&t| {
                if s == t {
                    0
                } else {
                    query_labels(label_s, self.label(t))
                }
            }));
        }
    }
}

impl PhlIndex {
    /// Exact distance query (see [`FrozenPhlLabels::query`]).
    #[inline]
    pub fn query(&self, s: Vertex, t: Vertex) -> Distance {
        self.frozen().query(s, t)
    }

    /// Exact distance query with scan statistics (see
    /// [`FrozenPhlLabels::query_with_stats`]).
    pub fn query_with_stats(&self, s: Vertex, t: Vertex) -> (Distance, QueryStats) {
        self.frozen().query_with_stats(s, t)
    }

    /// Batched one-to-many query into a caller-provided buffer.
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        self.frozen().one_to_many_into(s, targets, out)
    }

    /// Batched one-to-many query: allocating variant of
    /// [`PhlIndex::one_to_many_into`].
    pub fn one_to_many(&self, s: Vertex, targets: &[Vertex]) -> Vec<Distance> {
        let mut out = Vec::new();
        self.one_to_many_into(s, targets, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::dijkstra;
    use hc2l_graph::toy::{grid_graph, paper_figure1, path_graph};
    use hc2l_graph::{GraphBuilder, INFINITY};

    fn assert_all_pairs(g: &hc2l_graph::Graph) {
        let index = PhlIndex::build(g);
        for s in 0..g.num_vertices() as Vertex {
            let d = dijkstra(g, s);
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(
                    index.query(s, t),
                    d[t as usize],
                    "PHL query ({s},{t}) wrong"
                );
            }
        }
    }

    #[test]
    fn paper_example_all_pairs() {
        assert_all_pairs(&paper_figure1());
    }

    #[test]
    fn grid_all_pairs() {
        assert_all_pairs(&grid_graph(6, 6));
    }

    #[test]
    fn path_and_weighted_graphs() {
        assert_all_pairs(&path_graph(17, 4));
        let mut b = GraphBuilder::new(0);
        for (u, v, _) in grid_graph(5, 5).edges() {
            b.add_edge(u, v, 1 + (u * 11 + v * 5) % 7);
        }
        assert_all_pairs(&b.build());
    }

    #[test]
    fn disconnected_graph() {
        let g = GraphBuilder::from_edges(6, &[(0, 1, 2), (1, 2, 3), (3, 4, 4)]);
        let index = PhlIndex::build(&g);
        assert_eq!(index.query(0, 2), 5);
        assert_eq!(index.query(3, 4), 4);
        assert_eq!(index.query(0, 4), INFINITY);
        assert_eq!(index.query(5, 0), INFINITY);
    }

    #[test]
    fn query_stats_scan_full_labels() {
        let g = paper_figure1();
        let index = PhlIndex::build(&g);
        let (_, stats) = index.query_with_stats(2, 9);
        assert_eq!(stats.hubs_scanned, index.label_len(2) + index.label_len(9));
        assert_eq!(index.query_with_stats(3, 3).1.hubs_scanned, 0);
    }

    #[test]
    fn one_to_many_matches_pointwise_queries() {
        let g = grid_graph(4, 4);
        let index = PhlIndex::build(&g);
        let targets: Vec<Vertex> = (0..16).collect();
        let mut buf = Vec::new();
        for s in 0..16u32 {
            let batch = index.one_to_many(s, &targets);
            index.one_to_many_into(s, &targets, &mut buf);
            assert_eq!(batch, buf);
            for (t, &d) in targets.iter().zip(batch.iter()) {
                assert_eq!(d, index.query(s, *t));
            }
        }
    }

    #[test]
    fn byte_codec_round_trips_the_frozen_arena() {
        let g = grid_graph(4, 4);
        let index = PhlIndex::build(&g);
        let bytes = index.labels_to_bytes();
        let back = PhlIndex::labels_from_bytes(&bytes).expect("codec must round-trip");
        assert_eq!(&back, index.labels());
        assert!(PhlIndex::labels_from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }
}
