//! The checker checking itself: seeded bugs it MUST find, correct
//! protocols it must exhaust without complaint. If `lost_update_is_found`
//! or `torn_publication_is_found` ever starts passing silently, the model
//! checker has gone blind and every downstream model test is vacuous.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hc2l_check::shim::AtomicU64;
use hc2l_check::{model, model_with, thread, Mode, Options, Report};

/// Runs `f` under the checker expecting a violation; returns the failure
/// message the driver panicked with.
fn expect_failure<F>(f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model(f)))
        .expect_err("the checker failed to find the seeded bug");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// A classic lost update: two threads do load-then-store increments. The
/// checker must find the interleaving where both load 0 and the final
/// value is 1.
#[test]
fn lost_update_is_found() {
    let msg = expect_failure(|| {
        let n = Arc::new(AtomicU64::new(0));
        let (a, b) = (Arc::clone(&n), Arc::clone(&n));
        let t1 = thread::spawn(move || {
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
        });
        let t2 = thread::spawn(move || {
            let v = b.load(Ordering::SeqCst);
            b.store(v + 1, Ordering::SeqCst);
        });
        t1.join();
        t2.join();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    assert!(
        msg.contains("an increment was lost"),
        "wrong failure: {msg}"
    );
    // The report must replay the interleaving, not just the assertion.
    assert!(msg.contains("interleaving"), "no trace in: {msg}");
}

/// The same counter with a real RMW has no lost update; the DFS must
/// exhaust the space and say so.
#[test]
fn fetch_add_is_exhaustively_race_free() {
    let report: Report = model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let (a, b) = (Arc::clone(&n), Arc::clone(&n));
        let t1 = thread::spawn(move || {
            a.fetch_add(1, Ordering::SeqCst);
        });
        let t2 = thread::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
        });
        t1.join();
        t2.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhaustive, "DFS did not exhaust: {report:?}");
    assert!(
        report.schedules > 1,
        "no interleavings explored: {report:?}"
    );
    assert_eq!(report.threads, 3, "main + two spawned: {report:?}");
}

/// A broken two-word publication — no seqlock around the pair — must show
/// the reader a torn (half-written) value in some interleaving.
#[test]
fn torn_publication_is_found() {
    let msg = expect_failure(|| {
        let lo = Arc::new(AtomicU64::new(0));
        let hi = Arc::new(AtomicU64::new(0));
        let (wlo, whi) = (Arc::clone(&lo), Arc::clone(&hi));
        let writer = thread::spawn(move || {
            // BUG (seeded): the two halves publish without a sequence word,
            // so a reader can observe lo=7, hi=0.
            wlo.store(7, Ordering::Release);
            whi.store(7, Ordering::Release);
        });
        let l = lo.load(Ordering::Acquire);
        let h = hi.load(Ordering::Acquire);
        assert!(l == h || !(l == 7 && h == 0), "torn read: lo={l} hi={h}");
        writer.join();
    });
    assert!(msg.contains("torn read"), "wrong failure: {msg}");
}

/// The corrected protocol — an odd/even sequence word bracketing the pair,
/// reader retrying on mismatch — must pass exhaustively.
#[test]
fn seqlock_protocol_is_torn_free() {
    let report = model(|| {
        let seq = Arc::new(AtomicU64::new(0));
        let lo = Arc::new(AtomicU64::new(0));
        let hi = Arc::new(AtomicU64::new(0));
        let (wseq, wlo, whi) = (Arc::clone(&seq), Arc::clone(&lo), Arc::clone(&hi));
        let writer = thread::spawn(move || {
            wseq.store(1, Ordering::Release); // odd: fill in progress
            wlo.store(7, Ordering::Relaxed);
            whi.store(7, Ordering::Relaxed);
            wseq.store(2, Ordering::Release); // even: published
        });
        // Reader: accept only a stable even sequence around the pair.
        let s0 = seq.load(Ordering::Acquire);
        if s0.is_multiple_of(2) {
            let l = lo.load(Ordering::Relaxed);
            let h = hi.load(Ordering::Relaxed);
            let s1 = seq.load(Ordering::Acquire);
            if s0 == s1 {
                assert_eq!(l, h, "seqlock let a torn pair through: lo={l} hi={h}");
            }
        }
        writer.join();
    });
    assert!(report.exhaustive, "{report:?}");
    // The writer has 4 accesses, the reader up to 4: the schedule space is
    // real (dozens of interleavings), not degenerate.
    assert!(report.schedules >= 10, "{report:?}");
}

/// Sampling mode runs exactly the requested number of schedules and is
/// deterministic for a fixed seed.
#[test]
fn sampling_mode_is_deterministic() {
    let run = || {
        model_with(
            Options {
                mode: Mode::Sample {
                    iterations: 50,
                    seed: 0xABCD,
                },
                ..Options::default()
            },
            || {
                let n = Arc::new(AtomicU64::new(0));
                let a = Arc::clone(&n);
                let t = thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                t.join();
                assert_eq!(n.load(Ordering::SeqCst), 2);
            },
        )
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.schedules, 50);
    assert!(!r1.exhaustive);
    assert_eq!(r1.schedules, r2.schedules);
    assert_eq!(r1.threads, r2.threads);
}

/// A preemption bound of zero still explores blocking-point choices but
/// never mid-run switches; the run must stay exhaustive and green.
#[test]
fn zero_preemption_bound_is_exhaustive() {
    let report = model_with(
        Options {
            mode: Mode::Exhaustive {
                preemption_bound: 0,
            },
            ..Options::default()
        },
        || {
            let n = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&n);
            let t = thread::spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 1);
        },
    );
    assert!(report.exhaustive, "{report:?}");
}

/// Check-then-act on a flag: the window between observing "unset" and
/// setting it admits a double-claim, which the checker must expose.
#[test]
fn check_then_act_race_is_found() {
    let msg = expect_failure(|| {
        let claimed = Arc::new(AtomicU64::new(0));
        let winners = Arc::new(AtomicU64::new(0));
        let mk = |c: Arc<AtomicU64>, w: Arc<AtomicU64>| {
            move || {
                // BUG (seeded): load-then-store claim instead of CAS.
                if c.load(Ordering::SeqCst) == 0 {
                    c.store(1, Ordering::SeqCst);
                    w.fetch_add(1, Ordering::SeqCst);
                }
            }
        };
        let t1 = thread::spawn(mk(Arc::clone(&claimed), Arc::clone(&winners)));
        let t2 = thread::spawn(mk(Arc::clone(&claimed), Arc::clone(&winners)));
        t1.join();
        t2.join();
        assert!(
            winners.load(Ordering::SeqCst) <= 1,
            "two threads claimed the slot"
        );
    });
    assert!(msg.contains("two threads claimed"), "wrong failure: {msg}");
}
