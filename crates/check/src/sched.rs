//! The cooperative scheduler behind the model checker.
//!
//! One [`Execution`] is one run of the user's test closure under one
//! schedule. Every controlled thread (the closure itself is thread 0;
//! [`crate::thread::spawn`] adds more) parks on a shared condvar and runs
//! only while it is the scheduler's `current` thread. Every
//! ordering-relevant access — shim atomic load/store/RMW, fence, spawn,
//! join — calls [`schedule_point`] first, which records the access and
//! consults the schedule: a replay prefix driven by the DFS explorer, then
//! either the deterministic default (keep running the current thread) or a
//! seeded-random pick in sampling mode. Branch points (more than one
//! runnable thread, preemption budget left) are recorded as [`Decision`]s
//! so the explorer can backtrack.
//!
//! Threads are real OS threads, but exactly one is ever unparked, so an
//! execution is fully deterministic given its decision sequence — which is
//! what makes a failing interleaving replayable and printable.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// What a recorded access did. `Spawn`/`Join`/`Exit` are scheduling events
/// rather than memory accesses but appear in the trace for readability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Load,
    Store,
    Rmw,
    CasFailed,
    Fence,
    Spawn,
    Join,
    Exit,
}

/// One entry of the execution trace, printed when an invariant fails.
#[derive(Debug, Clone)]
pub(crate) struct Access {
    pub tid: usize,
    pub kind: AccessKind,
    /// Variable id, `usize::MAX` for non-memory events.
    pub var: usize,
    pub order: Ordering,
    /// Value loaded / stored / returned by the RMW; thread id for
    /// spawn/join events.
    pub value: u64,
}

/// A point where more than one thread could have been scheduled, and which
/// one was. The DFS explorer backtracks over these.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Runnable thread ids at this point, sorted; `index` picks one.
    pub choices: Vec<usize>,
    pub index: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    Runnable,
    /// Waiting for the given thread id to finish.
    Blocked(usize),
    Finished,
}

/// Why an execution stopped early.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub tid: usize,
    pub message: String,
}

/// Seeded xorshift64* generator for sampling mode — deterministic per seed,
/// no external RNG dependency.
#[derive(Debug, Clone)]
pub(crate) struct XorShift(pub u64);

impl XorShift {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

pub(crate) struct ExecInner {
    /// The one thread allowed to run right now.
    pub current: usize,
    pub states: Vec<ThreadState>,
    /// Forced choice indices replayed from the explorer.
    pub replay: Vec<usize>,
    pub cursor: usize,
    /// Every branch point of this execution, for backtracking.
    pub decisions: Vec<Decision>,
    /// Remaining preemptions (scheduling away from a runnable current
    /// thread). Bounding these is what keeps DFS tractable.
    pub preemptions_left: usize,
    /// `Some` = sampling mode: picks beyond the replay prefix are random.
    pub sampler: Option<XorShift>,
    pub trace: Vec<Access>,
    pub next_var: usize,
    pub var_names: Vec<String>,
    pub failed: Option<Failure>,
    pub abort: bool,
    pub complete: bool,
    /// Total threads ever registered (thread 0 + spawns).
    pub spawned: usize,
}

pub(crate) struct Execution {
    pub inner: Mutex<ExecInner>,
    pub cv: Condvar,
    /// OS-thread handles of every controlled thread, joined by the driver.
    pub handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind controlled threads when the execution is
/// aborted (failure elsewhere, or driver teardown). Not a test failure.
pub(crate) struct Aborted;

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's (execution, thread id), if it is a controlled
/// thread of an active model run.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The calling thread's ctx, or a panic explaining that shim atomics only
/// work inside [`crate::model`].
pub(crate) fn require_ctx(what: &str) -> (Arc<Execution>, usize) {
    current_ctx().unwrap_or_else(|| {
        panic!(
            "{what} used outside a model run: construct CheckAtomics-backed types \
             (and touch them) only inside hc2l_check::model(..)"
        )
    })
}

impl Execution {
    pub fn new(replay: Vec<usize>, preemption_bound: usize, sampler: Option<XorShift>) -> Self {
        Execution {
            inner: Mutex::new(ExecInner {
                current: 0,
                states: vec![ThreadState::Runnable],
                replay,
                cursor: 0,
                decisions: Vec::new(),
                preemptions_left: preemption_bound,
                sampler,
                trace: Vec::new(),
                next_var: 0,
                var_names: Vec::new(),
                failed: None,
                abort: false,
                complete: false,
                spawned: 1,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecInner> {
        // A controlled thread that panicked with a *real* failure poisons
        // this mutex on the way out; the state is still consistent (every
        // mutation happens-before the panic is raised) and the driver needs
        // it to print the trace.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a new shim atomic; returns its variable id.
    pub fn register_var(&self, name: Option<&str>) -> usize {
        let mut inner = self.lock();
        let id = inner.next_var;
        inner.next_var += 1;
        inner
            .var_names
            .push(name.map_or_else(|| format!("var#{id}"), str::to_owned));
        id
    }

    /// Registers a spawned thread; returns its thread id. The thread starts
    /// runnable but does not run until scheduled.
    pub fn register_thread(&self) -> usize {
        let mut inner = self.lock();
        let tid = inner.states.len();
        inner.states.push(ThreadState::Runnable);
        inner.spawned += 1;
        tid
    }

    /// Records `access` and lets the scheduler decide who runs next; blocks
    /// until this thread is scheduled again. Panics with [`Aborted`] if the
    /// execution is being torn down.
    pub fn schedule_point(self: &Arc<Self>, me: usize, access: Option<Access>) {
        let mut inner = self.lock();
        if inner.abort {
            drop(inner);
            std::panic::panic_any(Aborted);
        }
        if let Some(a) = access {
            inner.trace.push(a);
        }
        let next = pick_next(&mut inner, me);
        if next != me {
            inner.current = next;
            self.cv.notify_all();
            self.wait_until_current(inner, me);
        }
    }

    /// Parks until this thread is `current` (or the execution aborts).
    pub fn wait_until_current(self: &Arc<Self>, mut inner: MutexGuard<'_, ExecInner>, me: usize) {
        loop {
            if inner.abort {
                drop(inner);
                std::panic::panic_any(Aborted);
            }
            if inner.current == me {
                return;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks `me` until thread `target` finishes. The caller retrieves the
    /// join result from its own channel afterwards.
    pub fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        loop {
            let mut inner = self.lock();
            if inner.abort {
                drop(inner);
                std::panic::panic_any(Aborted);
            }
            if inner.states[target] == ThreadState::Finished {
                inner.trace.push(Access {
                    tid: me,
                    kind: AccessKind::Join,
                    var: usize::MAX,
                    order: Ordering::Acquire,
                    value: target as u64,
                });
                return;
            }
            inner.states[me] = ThreadState::Blocked(target);
            let next = pick_next(&mut inner, me);
            inner.current = next;
            self.cv.notify_all();
            self.wait_until_current(inner, me);
            // Woken as current: either the target finished (checked at the
            // top of the loop) or the execution is aborting.
        }
    }

    /// Marks `me` finished, wakes joiners, schedules a successor (or
    /// completes the execution).
    pub fn thread_exit(self: &Arc<Self>, me: usize) {
        let mut inner = self.lock();
        if inner.abort {
            return; // teardown: the driver is already draining threads
        }
        inner.states[me] = ThreadState::Finished;
        inner.trace.push(Access {
            tid: me,
            kind: AccessKind::Exit,
            var: usize::MAX,
            order: Ordering::Release,
            value: me as u64,
        });
        for i in 0..inner.states.len() {
            if inner.states[i] == ThreadState::Blocked(me) {
                inner.states[i] = ThreadState::Runnable;
            }
        }
        if inner.states.iter().all(|s| *s == ThreadState::Finished) {
            inner.complete = true;
            self.cv.notify_all();
            return;
        }
        let next = pick_next(&mut inner, me);
        inner.current = next;
        self.cv.notify_all();
    }

    /// Appends an access to the trace without a scheduling point (used for
    /// the post-operation record: the op already happened atomically while
    /// the thread was sole runner).
    pub fn trace_access(&self, access: Access) {
        self.lock().trace.push(access);
    }

    /// Raises a real failure (assertion panic in a controlled thread) and
    /// aborts every other thread.
    pub fn fail(&self, tid: usize, message: String) {
        let mut inner = self.lock();
        if inner.failed.is_none() {
            inner.failed = Some(Failure { tid, message });
        }
        inner.abort = true;
        self.cv.notify_all();
    }
}

/// Picks the next thread to run. `me` is the thread at the schedule point
/// (it may itself be blocked or finished). Deterministic given the replay
/// prefix; records a [`Decision`] at every branch point.
fn pick_next(inner: &mut ExecInner, me: usize) -> usize {
    let runnable: Vec<usize> = (0..inner.states.len())
        .filter(|&i| inner.states[i] == ThreadState::Runnable)
        .collect();
    if runnable.is_empty() {
        // Every schedule point is reached with at least one live thread, so
        // an empty runnable set means everyone else waits on a join cycle.
        inner.failed = Some(Failure {
            tid: me,
            message: "deadlock: no runnable threads (join cycle?)".into(),
        });
        inner.abort = true;
        return me;
    }
    let me_runnable = runnable.contains(&me);
    // With the preemption budget spent, a runnable current thread keeps
    // running — this is the bounded-preemption cap that keeps exhaustive
    // DFS polynomial-ish instead of factorial. Otherwise the current thread
    // is moved to the FRONT of the choice list: DFS starts every decision
    // at index 0 and backtracks by incrementing, so the first-explored
    // schedule is the no-preemption one and every alternative (including
    // lower thread ids) is still enumerated.
    let choices: Vec<usize> = if me_runnable && inner.preemptions_left == 0 {
        vec![me]
    } else if me_runnable {
        std::iter::once(me)
            .chain(runnable.iter().copied().filter(|&t| t != me))
            .collect()
    } else {
        runnable
    };
    if choices.len() == 1 {
        // Not a branch point: nothing to record, no replay slot consumed
        // (replay indices address branch points only, which are identical
        // across runs because execution is deterministic).
        return choices[0];
    }
    let index = if inner.cursor < inner.replay.len() {
        let i = inner.replay[inner.cursor];
        inner.cursor += 1;
        assert!(
            i < choices.len(),
            "schedule replay diverged (index {i} of {} choices): the model \
             closure must be deterministic apart from thread interleaving",
            choices.len()
        );
        i
    } else if let Some(sampler) = &mut inner.sampler {
        (sampler.next() % choices.len() as u64) as usize
    } else {
        // DFS default: index 0, which is the current thread when runnable
        // (the no-preemption schedule) by construction above.
        0
    };
    let chosen = choices[index];
    if me_runnable && chosen != me {
        inner.preemptions_left -= 1;
    }
    inner.decisions.push(Decision { choices, index });
    chosen
}
