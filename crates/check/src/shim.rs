//! Shim atomics: the checker's instantiation of the facade.
//!
//! Each cell registers itself with the active execution at construction
//! and turns every access into a scheduling point: the scheduler may run
//! any other thread *before* the access happens, which is exactly the
//! interleaving freedom real concurrent hardware has (at sequential
//! consistency — see the crate docs for what is and is not modelled). The
//! access itself then executes while the thread is sole owner of the CPU,
//! i.e. atomically, and is appended to the execution trace with the value
//! it read or wrote so a failing schedule prints as a readable history.
//!
//! Cells are usable only inside [`crate::model`]; constructing or touching
//! one outside a model run panics with instructions.

use std::sync::atomic::Ordering;

use crate::facade;
use crate::sched::{self, Access, AccessKind};

/// The checker's facade instantiation: `FrontCore<CheckAtomics>` etc.
#[derive(Debug, Default, Clone, Copy)]
pub struct CheckAtomics;

impl facade::Atomics for CheckAtomics {
    type U64 = AtomicU64;
    type Usize = AtomicUsize;
    type U8 = AtomicU8;

    fn fence(order: Ordering) {
        fence(order);
    }
}

/// A fence is a scheduling point recorded in the trace (the checker's
/// sequentially consistent interleavings make it a no-op semantically,
/// but traces read better with it present).
pub fn fence(order: Ordering) {
    let (exec, me) = sched::require_ctx("check fence");
    exec.schedule_point(
        me,
        Some(Access {
            tid: me,
            kind: AccessKind::Fence,
            var: usize::MAX,
            order,
            value: 0,
        }),
    );
}

macro_rules! shim_atomic {
    ($name:ident, $prim:ty, $std:ty) => {
        /// A model-checked atomic cell; see the module docs.
        #[derive(Debug)]
        pub struct $name {
            var: usize,
            inner: $std,
        }

        impl $name {
            /// Registers the cell with the active model execution.
            pub fn new(v: $prim) -> Self {
                Self::with_name(v, None)
            }

            /// Like [`Self::new`], with a label used in failure traces.
            pub fn with_name(v: $prim, name: Option<&str>) -> Self {
                let (exec, _) = sched::require_ctx(concat!("check ", stringify!($name), "::new"));
                $name {
                    var: exec.register_var(name),
                    inner: <$std>::new(v),
                }
            }

            fn access(&self, kind: AccessKind, order: Ordering, value: $prim) {
                let (exec, me) = sched::require_ctx(concat!("check ", stringify!($name)));
                exec.trace_access(Access {
                    tid: me,
                    kind,
                    var: self.var,
                    order,
                    value: value as u64,
                });
            }

            /// The pre-access scheduling point: any other runnable thread
            /// may be interleaved here.
            fn interleave(&self) {
                let (exec, me) = sched::require_ctx(concat!("check ", stringify!($name)));
                exec.schedule_point(me, None);
            }

            pub fn load(&self, order: Ordering) -> $prim {
                self.interleave();
                let v = self.inner.load(Ordering::SeqCst);
                self.access(AccessKind::Load, order, v);
                v
            }

            pub fn store(&self, v: $prim, order: Ordering) {
                self.interleave();
                self.inner.store(v, Ordering::SeqCst);
                self.access(AccessKind::Store, order, v);
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.interleave();
                let r =
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                match r {
                    Ok(v) => self.access(AccessKind::Rmw, success, v),
                    Err(v) => self.access(AccessKind::CasFailed, failure, v),
                }
                r
            }

            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.interleave();
                let prev = self.inner.fetch_add(v, Ordering::SeqCst);
                self.access(AccessKind::Rmw, order, prev);
                prev
            }

            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.interleave();
                let prev = self.inner.fetch_max(v, Ordering::SeqCst);
                self.access(AccessKind::Rmw, order, prev);
                prev
            }
        }
    };
}

shim_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
shim_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
shim_atomic!(AtomicU8, u8, std::sync::atomic::AtomicU8);

impl facade::AtomicU64 for AtomicU64 {
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order)
    }
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        AtomicU64::compare_exchange(self, current, new, success, failure)
    }
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, v, order)
    }
    fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_max(self, v, order)
    }
}

impl facade::AtomicUsize for AtomicUsize {
    fn new(v: usize) -> Self {
        AtomicUsize::new(v)
    }
    fn load(&self, order: Ordering) -> usize {
        AtomicUsize::load(self, order)
    }
    fn store(&self, v: usize, order: Ordering) {
        AtomicUsize::store(self, v, order)
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        AtomicUsize::fetch_add(self, v, order)
    }
}

impl facade::AtomicU8 for AtomicU8 {
    fn new(v: u8) -> Self {
        AtomicU8::new(v)
    }
    fn load(&self, order: Ordering) -> u8 {
        AtomicU8::load(self, order)
    }
    fn store(&self, v: u8, order: Ordering) {
        AtomicU8::store(self, v, order)
    }
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8> {
        AtomicU8::compare_exchange(self, current, new, success, failure)
    }
}
