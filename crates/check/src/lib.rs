//! Deterministic concurrency model checking for the lock-free serving cores.
//!
//! The workspace's hottest paths are hand-rolled lock-free code: the serve
//! cache's seqlock front layer, the observability histogram's striped
//! counters, and the generation-swap epoch mirror that makes live weight
//! updates invisible to in-flight queries. Stress tests on a 1-core host are
//! the worst possible environment to shake interleaving bugs out of that
//! code, so this crate makes the interleavings *enumerable* instead of
//! probabilistic — a loom-style checker with zero external dependencies:
//!
//! * [`facade`] — an **atomics facade**: traits mirroring the
//!   `std::sync::atomic` API, with a zero-cost [`facade::StdAtomics`]
//!   instantiation for production builds. Lock-free modules are written
//!   generically over the facade once and run unchanged under both worlds.
//! * [`shim`] — the checker's instantiation ([`shim::CheckAtomics`]): shim
//!   atomics that report every ordering-relevant access to a cooperative
//!   scheduler before performing it.
//! * [`sched`] + [`model`] — the scheduler and exploration driver: every
//!   atomic access is a scheduling point; [`model`] re-runs a test closure
//!   under **exhaustive DFS** over thread interleavings (with a bounded
//!   preemption cap to keep 2–3-thread state spaces tractable) or
//!   **seeded-random sampling** when the space outgrows DFS. A failed
//!   assertion aborts exploration and replays the recorded access trace so
//!   the offending interleaving is readable, not just reproducible.
//!
//! # What the checker does and does not model
//!
//! Executions are explored under **sequentially consistent interleaving**
//! of atomic accesses: every load/store/RMW/fence is a point where any
//! runnable thread may be scheduled. This exhaustively covers atomicity
//! bugs — torn multi-word publications, check-then-act races, lost updates,
//! missed invalidation windows — which is the failure class the seqlock and
//! epoch-swap protocols are built to exclude. It does **not** simulate
//! weaker-than-SC hardware reorderings (store buffering et al.); the
//! [`xtask` lint's](../../xtask) `relaxed-publish` rule and the CI
//! ThreadSanitizer leg guard the memory-ordering annotations themselves.
//!
//! # Writing checkable lock-free code
//!
//! ```
//! use hc2l_check::facade::{Atomics, AtomicU64 as _, StdAtomics};
//! use std::sync::atomic::Ordering;
//!
//! struct Flag<A: Atomics = StdAtomics> {
//!     word: A::U64,
//! }
//!
//! impl<A: Atomics> Flag<A> {
//!     fn new() -> Self {
//!         Flag { word: A::U64::new(0) }
//!     }
//!     fn raise(&self) {
//!         self.word.store(1, Ordering::Release);
//!     }
//!     fn raised(&self) -> bool {
//!         self.word.load(Ordering::Acquire) == 1
//!     }
//! }
//!
//! // Production: Flag::<StdAtomics>::new() — monomorphises to plain
//! // std::sync::atomic, zero overhead. Under the checker:
//! hc2l_check::model(|| {
//!     let flag = std::sync::Arc::new(Flag::<hc2l_check::shim::CheckAtomics>::new());
//!     let f2 = std::sync::Arc::clone(&flag);
//!     let t = hc2l_check::thread::spawn(move || f2.raise());
//!     let _ = flag.raised(); // every interleaving with the writer explored
//!     t.join();
//! });
//! ```

pub mod facade;
mod model;
mod sched;
pub mod shim;
pub mod thread;

pub use model::{model, model_with, Mode, Options, Report};
