//! The exploration driver: runs a test closure under every schedule the
//! strategy generates, reports the interleaving when an invariant fails.

use std::sync::{Arc, Mutex};

use crate::sched::{self, AccessKind, Decision, Execution, XorShift};

/// How the schedule space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exhaustive DFS over thread interleavings, branching at every point
    /// where more than one thread is runnable, with at most
    /// `preemption_bound` switches away from a runnable thread per
    /// schedule. Sound and complete within the bound; the practical sweet
    /// spot for 2–3 threads is a bound of 2–3 (context-bounded checking
    /// finds almost all real bugs at tiny bounds).
    Exhaustive { preemption_bound: usize },
    /// `iterations` schedules with uniformly random picks at every branch
    /// point, from a deterministic xorshift seed. For state spaces DFS
    /// cannot exhaust (4+ threads, long traces).
    Sample { iterations: usize, seed: u64 },
    /// Exhaustive while the closure spawns ≤ 3 threads, sampling beyond
    /// (decided after the first run, which observes the spawn count).
    Auto,
}

/// Exploration options for [`model_with`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    pub mode: Mode,
    /// Hard cap on explored schedules in exhaustive mode; exceeding it
    /// panics (the test should shrink its trace or switch to sampling)
    /// rather than silently under-exploring.
    pub max_schedules: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            mode: Mode::Auto,
            max_schedules: 500_000,
        }
    }
}

/// What an exploration did — returned on success so tests can assert the
/// space was actually covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules (complete executions) explored.
    pub schedules: usize,
    /// Whether the DFS ran to exhaustion (sampling mode reports `false`).
    pub exhaustive: bool,
    /// Most threads alive in any execution (including thread 0).
    pub threads: usize,
}

/// Serialises model runs: the panic hook and the controlled-thread
/// machinery are process-global. Poison is meaningless here (the guard is
/// only held around exploration).
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Explores `f` under [`Options::default`]: exhaustive DFS with a
/// preemption bound of 3 for closures spawning ≤ 3 threads, seeded
/// sampling beyond. Panics — with the failing interleaving's access trace —
/// if any schedule panics or deadlocks.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Options::default(), f)
}

/// [`model`] with explicit exploration options.
pub fn model_with<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let _guard = MODEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let f = Arc::new(f);
    let prev_hook = install_quiet_hook();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| explore(&opts, &f)));
    std::panic::set_hook(prev_hook);
    match result {
        Ok(report) => report,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Controlled threads communicate failures through [`Execution::fail`];
/// the default hook's stderr backtrace spam (especially for the expected
/// `Aborted` unwinds during teardown) would drown the real trace. Threads
/// outside the model run keep the previous hook's behaviour.
fn install_quiet_hook() -> Hook {
    let prev: Arc<Hook> = Arc::new(std::panic::take_hook());
    let prev_for_hook = Arc::clone(&prev);
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("hc2l-check-"))
        {
            return; // a controlled thread: the driver reports it
        }
        prev_for_hook(info);
    }));
    // Restoration installs a delegate to the previous hook (the closure
    // above still holds its own Arc, which dies with the replaced hook).
    Box::new(move |info| prev(info))
}

fn explore<F>(opts: &Options, f: &Arc<F>) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let mut report = Report {
        schedules: 0,
        exhaustive: false,
        threads: 0,
    };
    // First run with the default (no-preemption) schedule to observe the
    // thread count, which Auto mode uses to pick a strategy.
    let (bound, mut sampler, mut iterations_left) = match opts.mode {
        Mode::Exhaustive { preemption_bound } => (preemption_bound, None, usize::MAX),
        Mode::Sample { iterations, seed } => (usize::MAX, Some(XorShift(seed)), iterations),
        Mode::Auto => (3, None, usize::MAX),
    };
    let mut replay: Vec<usize> = Vec::new();
    let mut switched_to_sampling = false;
    loop {
        let exec = Arc::new(Execution::new(replay.clone(), bound, sampler.clone()));
        let (decisions, threads) = run_one(&exec, f);
        report.schedules += 1;
        report.threads = report.threads.max(threads);
        if let Some(s) = &mut sampler {
            // Carry the generator forward so iterations differ.
            let mut inner = exec.inner.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(advanced) = inner.sampler.take() {
                *s = advanced;
            }
            iterations_left -= 1;
            if iterations_left == 0 {
                break;
            }
            continue;
        }
        // Auto mode bails out of DFS when the thread count outgrows it.
        if matches!(opts.mode, Mode::Auto) && threads > 3 && !switched_to_sampling {
            switched_to_sampling = true;
            sampler = Some(XorShift(0x5eed_cafe_f00d_beef));
            iterations_left = 2_000;
            replay.clear();
            continue;
        }
        match next_replay(&decisions) {
            Some(next) => replay = next,
            None => {
                report.exhaustive = true;
                break;
            }
        }
        assert!(
            report.schedules < opts.max_schedules,
            "model exploration exceeded {} schedules without exhausting the space; \
             shrink the modelled trace, lower the preemption bound, or use Mode::Sample",
            opts.max_schedules
        );
    }
    report
}

/// DFS backtracking: advance the last decision that still has untried
/// choices, truncating everything after it.
fn next_replay(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].index + 1 < decisions[i].choices.len() {
            let mut replay: Vec<usize> = decisions[..i].iter().map(|d| d.index).collect();
            replay.push(decisions[i].index + 1);
            return Some(replay);
        }
    }
    None
}

/// Runs one execution to completion (or failure): spawns thread 0 running
/// the closure, waits for the scheduler to report completion, drains every
/// controlled OS thread, and panics with the trace on failure.
fn run_one<F>(exec: &Arc<Execution>, f: &Arc<F>) -> (Vec<Decision>, usize)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::clone(f);
    crate::thread::spawn_controlled(exec, 0, move || f());
    // Wait until the execution completes or fails.
    {
        let mut inner = exec.inner.lock().unwrap_or_else(|p| p.into_inner());
        while !inner.complete && inner.failed.is_none() {
            inner = exec.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        if inner.failed.is_some() && !inner.abort {
            inner.abort = true;
        }
        exec.cv.notify_all();
    }
    // Drain every OS thread; aborted ones unwind with the Aborted payload.
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|p| p.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let inner = exec.inner.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(failure) = &inner.failed {
        let mut msg = format!(
            "model check failed on thread {}: {}\n--- interleaving ({} accesses, {} threads) ---\n",
            failure.tid,
            failure.message,
            inner.trace.len(),
            inner.states.len(),
        );
        const TAIL: usize = 200;
        let skipped = inner.trace.len().saturating_sub(TAIL);
        if skipped > 0 {
            msg.push_str(&format!("... {skipped} earlier accesses elided ...\n"));
        }
        for a in &inner.trace[skipped..] {
            let var = if a.var == usize::MAX {
                String::new()
            } else {
                format!(
                    " {}",
                    inner.var_names.get(a.var).map_or("?", String::as_str)
                )
            };
            msg.push_str(&format!(
                "  [t{}] {:?}{} = {} ({:?})\n",
                a.tid, a.kind, var, a.value, a.order
            ));
        }
        panic!("{msg}");
    }
    let threads = inner.states.len();
    (inner.decisions.clone(), threads)
}

/// Records a non-memory scheduling event in the active execution's trace
/// (used by spawn).
pub(crate) fn trace_event(exec: &Arc<Execution>, tid: usize, kind: AccessKind, value: u64) {
    exec.trace_access(sched::Access {
        tid,
        kind,
        var: usize::MAX,
        order: std::sync::atomic::Ordering::SeqCst,
        value,
    });
}
