//! The atomics facade: write a lock-free module once, run it under real
//! `std::sync::atomic` in release builds and under the model checker in
//! tests.
//!
//! A lock-free type takes a type parameter `A: Atomics` (defaulted to
//! [`StdAtomics`] so production call sites never see the generic) and stores
//! `A::U64` / `A::Usize` / `A::U8` cells instead of concrete atomic types.
//! Every method is `#[inline]` and the `StdAtomics` instantiation is a
//! transparent delegation, so the release monomorphisation compiles to the
//! identical instructions as hand-written `std::sync::atomic` code — the
//! PR10 bench re-emit (BENCH_PR10.json vs BENCH_PR9.json) holds the facade
//! refactor to the ±5% parity gate.
//!
//! The checker's instantiation is [`crate::shim::CheckAtomics`], whose cells
//! report every access to the cooperative scheduler before performing it.

use std::sync::atomic::Ordering;

/// One atomic `u64` cell. Mirrors the `std::sync::atomic::AtomicU64`
/// surface the workspace's lock-free code actually uses.
pub trait AtomicU64: Send + Sync {
    fn new(v: u64) -> Self;
    fn load(&self, order: Ordering) -> u64;
    fn store(&self, v: u64, order: Ordering);
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
    fn fetch_max(&self, v: u64, order: Ordering) -> u64;
}

/// One atomic `usize` cell (stripe indices, slot counters).
pub trait AtomicUsize: Send + Sync {
    fn new(v: usize) -> Self;
    fn load(&self, order: Ordering) -> usize;
    fn store(&self, v: usize, order: Ordering);
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
}

/// One atomic `u8` cell (small state machines, e.g. kernel dispatch tags).
pub trait AtomicU8: Send + Sync {
    fn new(v: u8) -> Self;
    fn load(&self, order: Ordering) -> u8;
    fn store(&self, v: u8, order: Ordering);
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8>;
}

/// The facade a lock-free module is generic over: which atomic cells it
/// allocates and how it fences.
pub trait Atomics: 'static {
    type U64: AtomicU64;
    type Usize: AtomicUsize;
    type U8: AtomicU8;

    /// An atomic fence with the given ordering (`std::sync::atomic::fence`
    /// in production; a recorded scheduling point under the checker).
    fn fence(order: Ordering);
}

/// The production instantiation: plain `std::sync::atomic` types, fully
/// inlined — zero cost over writing the concrete types by hand.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdAtomics;

impl AtomicU64 for std::sync::atomic::AtomicU64 {
    #[inline(always)]
    fn new(v: u64) -> Self {
        std::sync::atomic::AtomicU64::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: u64, order: Ordering) {
        std::sync::atomic::AtomicU64::store(self, v, order)
    }
    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        std::sync::atomic::AtomicU64::compare_exchange(self, current, new, success, failure)
    }
    #[inline(always)]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_add(self, v, order)
    }
    #[inline(always)]
    fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_max(self, v, order)
    }
}

impl AtomicUsize for std::sync::atomic::AtomicUsize {
    #[inline(always)]
    fn new(v: usize) -> Self {
        std::sync::atomic::AtomicUsize::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: usize, order: Ordering) {
        std::sync::atomic::AtomicUsize::store(self, v, order)
    }
    #[inline(always)]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::fetch_add(self, v, order)
    }
}

impl AtomicU8 for std::sync::atomic::AtomicU8 {
    #[inline(always)]
    fn new(v: u8) -> Self {
        std::sync::atomic::AtomicU8::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> u8 {
        std::sync::atomic::AtomicU8::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: u8, order: Ordering) {
        std::sync::atomic::AtomicU8::store(self, v, order)
    }
    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8> {
        std::sync::atomic::AtomicU8::compare_exchange(self, current, new, success, failure)
    }
}

impl Atomics for StdAtomics {
    type U64 = std::sync::atomic::AtomicU64;
    type Usize = std::sync::atomic::AtomicUsize;
    type U8 = std::sync::atomic::AtomicU8;

    #[inline(always)]
    fn fence(order: Ordering) {
        std::sync::atomic::fence(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The facade must be instantiable exactly like the concrete types the
    // production code used to hold, with identical semantics.
    struct Pair<A: Atomics = StdAtomics> {
        hi: A::U64,
        lo: A::U64,
    }

    impl<A: Atomics> Pair<A> {
        fn new() -> Self {
            Pair {
                hi: A::U64::new(0),
                lo: A::U64::new(0),
            }
        }
    }

    #[test]
    fn std_atomics_behave_like_std() {
        let p = Pair::<StdAtomics>::new();
        p.hi.store(7, Ordering::Release);
        assert_eq!(p.hi.load(Ordering::Acquire), 7);
        assert_eq!(p.lo.fetch_add(3, Ordering::Relaxed), 0);
        assert_eq!(p.lo.fetch_max(2, Ordering::Relaxed), 3);
        assert_eq!(p.lo.load(Ordering::Relaxed), 3);
        assert_eq!(
            p.hi.compare_exchange(7, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(7)
        );
        assert_eq!(
            p.hi.compare_exchange(7, 11, Ordering::AcqRel, Ordering::Acquire),
            Err(9)
        );
        StdAtomics::fence(Ordering::SeqCst);

        let u = <std::sync::atomic::AtomicUsize as AtomicUsize>::new(1);
        assert_eq!(AtomicUsize::fetch_add(&u, 1, Ordering::Relaxed), 1);
        let b = <std::sync::atomic::AtomicU8 as AtomicU8>::new(5);
        AtomicU8::store(&b, 6, Ordering::Relaxed);
        assert_eq!(AtomicU8::load(&b, Ordering::Relaxed), 6);
        assert_eq!(
            AtomicU8::compare_exchange(&b, 6, 7, Ordering::Relaxed, Ordering::Relaxed),
            Ok(6)
        );
    }
}
