//! Controlled threads for model runs: `check::thread::spawn` mirrors
//! `std::thread::spawn`, but the spawned closure runs under the
//! scheduler — it starts parked, runs only while scheduled, and every shim
//! atomic access inside it is an exploration point.

use std::sync::{Arc, Mutex};

use crate::model::trace_event;
use crate::sched::{self, Aborted, AccessKind, Execution};

/// Handle to a controlled thread. Unlike `std::thread::JoinHandle`, `join`
/// returns the closure's value directly: a panicking controlled thread
/// fails the whole model run, so there is no `Result` to inspect.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (under the scheduler) until the thread finishes; returns its
    /// value.
    pub fn join(self) -> T {
        let (exec, me) = sched::require_ctx("check::thread::JoinHandle::join");
        exec.join_thread(me, self.tid);
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_else(|| {
                // The target finished without storing a result: it unwound
                // with `Aborted` while the execution is tearing down.
                std::panic::panic_any(Aborted)
            })
    }
}

/// Spawns a controlled thread inside a model run. Panics if called outside
/// [`crate::model`].
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = sched::require_ctx("check::thread::spawn");
    let tid = exec.register_thread();
    trace_event(&exec, me, AccessKind::Spawn, tid as u64);
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    spawn_controlled(&exec, tid, move || {
        let v = f();
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
    });
    // The spawn itself is a scheduling point: "child runs first" is an
    // interleaving worth exploring.
    exec.schedule_point(me, None);
    JoinHandle { tid, result }
}

/// Voluntarily offers the scheduler a switch point (useful to model a
/// non-atomic pause between two atomic regions).
pub fn yield_now() {
    if let Some((exec, me)) = sched::current_ctx() {
        exec.schedule_point(me, None);
    }
}

/// Spawns the OS thread backing controlled thread `tid` and parks it until
/// scheduled. Used by [`spawn`] and by the driver for thread 0.
pub(crate) fn spawn_controlled<F>(exec: &Arc<Execution>, tid: usize, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let exec_for_thread = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("hc2l-check-{tid}"))
        .spawn(move || {
            sched::set_ctx(Arc::clone(&exec_for_thread), tid);
            // Park until scheduled (thread 0 starts as `current` and
            // proceeds immediately).
            {
                let inner = exec_for_thread
                    .inner
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    exec_for_thread.wait_until_current(inner, tid)
                }));
                if res.is_err() {
                    sched::clear_ctx();
                    return; // aborted before ever running
                }
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match result {
                Ok(()) => exec_for_thread.thread_exit(tid),
                Err(payload) => {
                    if payload.downcast_ref::<Aborted>().is_some() {
                        // Teardown unwind, not a failure; the driver is
                        // already draining threads.
                    } else {
                        exec_for_thread.fail(tid, panic_message(payload.as_ref()));
                    }
                }
            }
            sched::clear_ctx();
        })
        .unwrap_or_else(|e| panic!("failed to spawn controlled thread {tid}: {e}"));
    exec.handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(handle);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "controlled thread panicked (non-string payload)".to_owned()
    }
}
