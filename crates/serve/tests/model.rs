//! Model-check suite for the serve layer's lock-free cores.
//!
//! These tests run the PRODUCTION seqlock and epoch-mirror source
//! (`hc2l_serve::lockfree`, instantiated with the checker's shim atomics
//! instead of `std::sync::atomic`) under `hc2l_check`'s deterministic
//! scheduler, which exhaustively explores thread interleavings at every
//! atomic access. A passing test here is a proof over the whole explored
//! schedule space, not a lucky stress run; the `report.exhaustive` asserts
//! make sure the space was actually exhausted rather than sampled.

use std::sync::Arc;

use hc2l_check::shim::CheckAtomics;
use hc2l_check::{model, thread};
use hc2l_serve::lockfree::{EpochMirror, FrontCore};

type CheckedFront = FrontCore<CheckAtomics>;
type CheckedMirror = EpochMirror<CheckAtomics>;

/// The value a correctly-published slot must carry, derived from its key
/// and epoch so any torn mix of two fills is detectable.
fn sealed(key: u64, epoch: u64) -> u64 {
    key.wrapping_mul(1000).wrapping_add(epoch)
}

/// One writer filling, one reader probing, every interleaving: the reader
/// must see a miss or the exact sealed value — never a half-written slot.
#[test]
fn seqlock_reader_never_observes_torn_fill() {
    let report = model(|| {
        // 1 slot: the fill and the probe are guaranteed to collide.
        let front = Arc::new(CheckedFront::new(1));
        let w = Arc::clone(&front);
        let writer = thread::spawn(move || {
            w.fill(7, sealed(7, 0), 0);
        });
        if let Some(v) = front.probe(7, 0) {
            assert_eq!(v, sealed(7, 0), "torn fill observed by reader");
        }
        writer.join();
        // After the writer finishes, the fill must be visible and intact.
        assert_eq!(front.probe(7, 0), Some(sealed(7, 0)));
    });
    assert!(
        report.exhaustive,
        "schedule space not exhausted: {report:?}"
    );
    assert!(report.schedules > 1, "degenerate exploration: {report:?}");
}

/// Two writers racing for one slot plus a concurrent reader (hit, fill and
/// overwrite in flight together): any probe result must be one of the two
/// sealed values, never a mix of them.
#[test]
fn seqlock_concurrent_fills_never_mix() {
    let report = model(|| {
        let front = Arc::new(CheckedFront::new(1));
        let (w1, w2) = (Arc::clone(&front), Arc::clone(&front));
        // Distinct keys, same slot (1-slot table): overwrite race.
        let t1 = thread::spawn(move || w1.fill(1, sealed(1, 0), 0));
        let t2 = thread::spawn(move || w2.fill(2, sealed(2, 0), 0));
        for key in [1u64, 2] {
            if let Some(v) = front.probe(key, 0) {
                assert_eq!(v, sealed(key, 0), "mixed fills leaked through seqlock");
            }
        }
        t1.join();
        t2.join();
    });
    assert!(report.schedules > 1, "degenerate exploration: {report:?}");
}

/// The generation-swap invalidation invariant, modelled exactly as
/// `server.rs` runs it: the cache holds an entry tagged with epoch 0, an
/// updater publishes epoch 1 through the mirror (the swap), and a reader
/// probes with whatever epoch it loaded. In NO interleaving may a reader
/// that observed the new epoch hit the old generation's entry.
#[test]
fn epoch_invalidation_never_serves_stale_generation() {
    let report = model(|| {
        let front = Arc::new(CheckedFront::new(1));
        let mirror = Arc::new(CheckedMirror::new(0));
        // Pre-state: the old generation's answer is cached at epoch 0.
        front.fill(7, sealed(7, 0), 0);
        let m = Arc::clone(&mirror);
        let updater = thread::spawn(move || {
            // The swap: publish the new epoch. (server.rs does this inside
            // the generation write lock, before the Arc swap.)
            m.publish(1);
        });
        // The reader path of ServeState::distance.
        let epoch = mirror.load();
        match front.probe(7, epoch) {
            Some(v) => {
                assert_eq!(epoch, 0, "stale generation served after invalidation");
                assert_eq!(v, sealed(7, 0));
            }
            None => {
                // A miss is always safe: the caller recomputes on the
                // current generation and re-inserts under `epoch`.
            }
        }
        updater.join();
        // Post-swap probes with the new epoch must keep missing until a
        // fresh fill arrives...
        assert_eq!(front.probe(7, 1), None);
        front.fill(7, sealed(7, 1), 1);
        // ...and then serve only the new generation's value.
        assert_eq!(front.probe(7, 1), Some(sealed(7, 1)));
        assert_eq!(front.probe(7, 0), None, "old epoch resurrected");
    });
    assert!(
        report.exhaustive,
        "schedule space not exhausted: {report:?}"
    );
}

/// A reader racing a fill *and* an epoch publish at once — the full
/// three-way traffic of a live update under load.
#[test]
fn swap_during_fill_is_always_consistent() {
    let report = model(|| {
        let front = Arc::new(CheckedFront::new(1));
        let mirror = Arc::new(CheckedMirror::new(0));
        let (f1, m1) = (Arc::clone(&front), Arc::clone(&mirror));
        // A query that computed under epoch 0 inserts its result while...
        let filler = thread::spawn(move || f1.fill(7, sealed(7, 0), 0));
        // ...an update publishes epoch 1.
        let swapper = thread::spawn(move || m1.publish(1));
        let epoch = mirror.load();
        if let Some(v) = front.probe(7, epoch) {
            // Whatever epoch the reader saw, the value must be the one
            // sealed for that epoch — the late insert tagged 0 can never
            // satisfy an epoch-1 probe.
            assert_eq!(v, sealed(7, epoch), "cross-epoch value served");
            assert_eq!(epoch, 0, "epoch-1 probe hit an epoch-0 fill");
        }
        filler.join();
        swapper.join();
    });
    assert!(report.schedules > 1, "degenerate exploration: {report:?}");
}
