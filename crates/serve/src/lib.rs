//! `hc2l-serve`: the concurrent query-serving subsystem of the HC2L
//! workspace.
//!
//! The construction crates build an index once; the persistence layer
//! (`hc2l_graph::container`) saves and reloads it in milliseconds; this
//! crate is the third phase — *serving* a loaded index to many concurrent
//! clients, the deployment shape the paper's sub-microsecond query times
//! exist for:
//!
//! * **mmap-backed loading** — the daemon opens indexes with
//!   `OracleBuilder::open`, which memory-maps the container
//!   (`Container::open_mmap`) and queries zero-copy views of the mapping;
//!   one physical copy of a multi-GB index serves every process on the
//!   host.
//! * **shared read-only oracles** — [`ServeState`] bundles the oracle (a
//!   `SharedOracle` view or an owned `Oracle`), a sharded LRU result cache
//!   ([`QueryCache`]) and relaxed-atomic counters; worker threads query it
//!   behind one `Arc` with no locks on the oracle path.
//! * **live weight updates** — `UpdateWeights` frames carry edge
//!   re-weighting batches (live traffic) to a daemon started from an owned
//!   graph ([`ServeState::with_updates`]); the batch is absorbed
//!   incrementally where the backend supports it (CH customization, HC2L
//!   relabelling — see `hc2l-dynamic`) or by rebuild otherwise, and the
//!   refreshed index is published as a new epoch-tagged generation with one
//!   pointer swap — in-flight queries finish on the old generation, cache
//!   entries from it read as misses, and no query ever blocks on an update
//!   (the epoll model offloads absorption to a worker thread).
//! * **a wire protocol and daemon** — a length-prefixed binary protocol
//!   ([`protocol`]) carrying `Distance`, batched `OneToMany`,
//!   `UpdateWeights`, `Stats` and `Shutdown` over TCP, decodable both
//!   blockingly and incrementally
//!   ([`FrameDecoder`] accepts frames in arbitrary fragments). Two
//!   connection models serve it through one execution path
//!   ([`serve_with_model`]): the event-driven epoll reactor
//!   ([`ServeModel::Epoll`], the Linux default — N reactor threads,
//!   per-connection state tables, write backpressure, 512+ mostly-idle
//!   connections with no thread per client) and the blocking
//!   thread-per-connection loop ([`ServeModel::Threads`], the portable
//!   fallback). The `hc2l-serve` binary is the daemon (`--model
//!   epoll|threads`); `hc2l-query` is the matching client, able to replay
//!   `hc2l_roadnet` workload files over `--clients N` concurrent
//!   connections and gate exactness.
//! * **throughput measurement** — [`measure_throughput`] drives N in-process
//!   workers over a pair set and reports aggregate queries/second and cache
//!   hit rate; [`measure_connection_scaling`] holds hundreds of mostly-idle
//!   TCP connections against a running server and verifies every answer
//!   over the wire. The daemon's `--bench`/`--bench-scaling` flags and the
//!   JSON bench's throughput + `concurrent_connections` columns are these
//!   numbers.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hc2l_oracle::OracleBuilder;
//! use hc2l_serve::{serve, ServeState};
//!
//! let oracle = OracleBuilder::open(std::path::Path::new("paris.hc2l")).unwrap();
//! let state = Arc::new(ServeState::new(oracle, 8, 1 << 20));
//! let server = serve(state, ("0.0.0.0", 7171)).unwrap();
//! println!("serving on {}", server.addr());
//! server.wait().unwrap();
//! ```

pub mod cache;
pub mod lockfree;
pub mod metrics;
pub mod protocol;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod server;
pub mod throughput;

pub use cache::{CacheStats, QueryCache};
pub use metrics::OpLatencies;
pub use protocol::{
    read_request, read_response, write_request, write_response, FrameDecoder, Request, Response,
    ServerStats, UpdateOutcome, MAX_FRAME_BYTES, MAX_ONE_TO_MANY_TARGETS, MAX_UPDATE_BATCH,
};
pub use server::{
    serve, serve_with_model, Generation, ServeConfig, ServeModel, ServeState, ServedOracle,
    ServerHandle, UpdateError,
};
pub use throughput::{
    measure_connection_scaling, measure_throughput, ConnectionScalingReport, ThroughputReport,
};
