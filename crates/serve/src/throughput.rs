//! Aggregate-throughput measurement: N worker threads hammering one shared
//! [`ServeState`] in process, plus a connection-count scaling driver that
//! goes through real sockets.
//!
//! [`measure_throughput`] is the number the serving story is judged by —
//! how many exact point-to-point queries per second one loaded index
//! sustains across all cores — measured *above* the cache and counters
//! (the real serve path) but below the socket layer, so it reports
//! index + cache + contention throughput rather than loopback-TCP
//! throughput. The daemon's `--bench` flag and the JSON bench's
//! `queries_per_second` column both come from here.
//!
//! [`measure_connection_scaling`] is the connection-model stress: it holds
//! `connections` open TCP connections against a running server — a small
//! `active` subset replaying a verified workload, the rest idle, the shape
//! of a real fleet of mostly-quiet clients — and reports over-the-wire
//! throughput plus any answer mismatches. Sweeping it over 8 → 512+
//! connections is what separates the epoll reactor from thread-per-
//! connection serving; the JSON bench's `concurrent_connections` column is
//! the largest count this driver verified exactness at.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use hc2l_graph::Distance;
use hc2l_roadnet::QueryPair;

use crate::protocol::{read_response, write_request, Request, Response};
use crate::server::ServeState;

/// Result of one [`measure_throughput`] run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Total point-to-point queries answered across all workers.
    pub queries: u64,
    /// Wall-clock seconds from the start barrier to the last worker done.
    pub seconds: f64,
    /// Aggregate queries per second (`queries / seconds`).
    pub queries_per_second: f64,
    /// Cache hit rate over the run (0.0 when the cache is disabled).
    pub cache_hit_rate: f64,
}

/// Runs `threads` workers over the pair set, each replaying the whole set
/// `reps` times starting at a different offset (so workers don't march in
/// lockstep over the same keys), and reports aggregate queries/second.
///
/// Cache counters are read as a delta around the run, so a `ServeState`
/// that served other traffic before can still be measured. The distance
/// sum is accumulated and black-boxed to keep the optimiser honest.
pub fn measure_throughput(
    state: &Arc<ServeState>,
    pairs: &[QueryPair],
    threads: usize,
    reps: usize,
) -> ThroughputReport {
    assert!(!pairs.is_empty(), "cannot measure an empty workload");
    let threads = threads.max(1);
    let reps = reps.max(1);

    // One warmup pass (faults mapped pages in, fills the cache's working
    // set) before the timed section.
    let mut warm: u64 = 0;
    for p in pairs.iter().take(1024) {
        warm = warm.wrapping_add(state.distance(p.source, p.target));
    }
    std::hint::black_box(warm);
    // Counter baseline *after* the warmup, so the reported hit rate covers
    // exactly the timed run.
    let before = state.cache().stats();

    let start_barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let state = Arc::clone(state);
            let pairs = pairs.to_vec();
            let barrier = Arc::clone(&start_barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut sum: u64 = 0;
                let mut done: u64 = 0;
                // Stagger the starting offset per worker.
                let offset = (w * pairs.len()) / threads;
                for _ in 0..reps {
                    for i in 0..pairs.len() {
                        let p = pairs[(i + offset) % pairs.len()];
                        sum = sum.wrapping_add(state.distance(p.source, p.target));
                        done += 1;
                    }
                }
                std::hint::black_box(sum);
                done
            })
        })
        .collect();

    // The clock starts *before* releasing the barrier: workers cannot
    // proceed until this thread arrives, so the start is at most the
    // barrier-release overhead early — whereas starting the clock after
    // `wait()` returns would under-measure badly whenever the OS parks
    // this thread while the released workers run.
    let start = Instant::now();
    start_barrier.wait();
    let mut queries = 0u64;
    for w in workers {
        queries += w.join().expect("throughput worker panicked");
    }
    let seconds = start.elapsed().as_secs_f64();

    let after = state.cache().stats();
    let lookups = (after.hits + after.misses).saturating_sub(before.hits + before.misses);
    let hits = after.hits.saturating_sub(before.hits);
    ThroughputReport {
        threads,
        queries,
        seconds,
        queries_per_second: if seconds > 0.0 {
            queries as f64 / seconds
        } else {
            0.0
        },
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    }
}

/// Result of one [`measure_connection_scaling`] run.
#[derive(Debug, Clone, Copy)]
pub struct ConnectionScalingReport {
    /// Connections held open for the whole timed section (active + idle).
    pub connections: usize,
    /// Connections that actually replayed the workload.
    pub active: usize,
    /// Total queries answered over the wire.
    pub queries: u64,
    /// Wall-clock seconds of the replay.
    pub seconds: f64,
    /// Aggregate over-the-wire queries per second.
    pub queries_per_second: f64,
    /// Answers that disagreed with the expected distances — any non-zero
    /// value means the served index is wrong under concurrency; callers
    /// gate on it.
    pub mismatches: u64,
}

/// Best-effort raise of the process's open-file soft limit to at least
/// `want` descriptors (capped by the hard limit). A 512-connection scaling
/// run holds ~1k fds in one process (client + accepted sides), which is
/// over the common 1024 default soft limit; failures are ignored — the
/// subsequent `connect` error carries the real diagnosis.
#[cfg(target_os = "linux")]
fn ensure_fd_headroom(want: u64) {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` lives on this stack frame and matches the kernel's
    // rlimit layout (two u64s); the kernel writes exactly one RLimit.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return;
    }
    if lim.cur >= want {
        return;
    }
    lim.cur = want.min(lim.max);
    // SAFETY: same layout argument; the kernel only reads through the
    // pointer during the call.
    unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
}

#[cfg(not(target_os = "linux"))]
fn ensure_fd_headroom(_want: u64) {}

/// Holds `connections` open TCP connections against the server at `addr` —
/// `active` of them replay the pair set `reps` times (staggered, verifying
/// every answer against `expected`, which is parallel to `pairs`) while
/// the rest sit idle — and reports aggregate over-the-wire throughput.
///
/// The idle majority is the point: a deployed daemon's connection table is
/// mostly quiet clients, and a connection model is judged by whether held
/// connections cost it anything. All sockets are connected (and thus
/// accepted and registered by the server) before the clock starts.
pub fn measure_connection_scaling(
    addr: SocketAddr,
    pairs: &[QueryPair],
    expected: &[Distance],
    connections: usize,
    active: usize,
    reps: usize,
) -> io::Result<ConnectionScalingReport> {
    assert!(!pairs.is_empty(), "cannot measure an empty workload");
    assert_eq!(pairs.len(), expected.len(), "expected is parallel to pairs");
    let connections = connections.max(1);
    let active = active.clamp(1, connections);
    let reps = reps.max(1);
    // Both ends of every connection may live in this process (the bench
    // serves in-process): budget 2 fds per connection plus slack.
    ensure_fd_headroom(connections as u64 * 2 + 128);

    // Connect everything up front; the first `active` sockets will work.
    let mut sockets = Vec::with_capacity(connections);
    for _ in 0..connections {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        sockets.push(s);
    }
    let idle: Vec<TcpStream> = sockets.split_off(active);

    // Scoped workers borrow the (possibly large) pair and expected arrays
    // instead of cloning them per thread.
    let start_barrier = Barrier::new(active + 1);
    let barrier = &start_barrier;
    let mut queries = 0u64;
    let mut mismatches = 0u64;
    let mut first_err: Option<io::Error> = None;
    let seconds = std::thread::scope(|scope| {
        let workers: Vec<_> = sockets
            .into_iter()
            .enumerate()
            .map(|(w, stream)| {
                scope.spawn(move || -> io::Result<(u64, u64)> {
                    let mut reader = BufReader::new(stream.try_clone()?);
                    let mut writer = BufWriter::new(stream);
                    barrier.wait();
                    let mut queries = 0u64;
                    let mut mismatches = 0u64;
                    let offset = (w * pairs.len()) / active;
                    for _ in 0..reps {
                        for i in 0..pairs.len() {
                            let k = (i + offset) % pairs.len();
                            let p = pairs[k];
                            write_request(&mut writer, &Request::Distance(p.source, p.target))?;
                            match read_response(&mut reader)? {
                                Some(Response::Distance(d)) => {
                                    queries += 1;
                                    if d != expected[k] {
                                        mismatches += 1;
                                    }
                                }
                                other => {
                                    return Err(io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        format!("unexpected response {other:?}"),
                                    ))
                                }
                            }
                        }
                    }
                    Ok((queries, mismatches))
                })
            })
            .collect();

        // As in `measure_throughput`: the clock starts before the barrier
        // release so a parked coordinator cannot under-measure the run.
        let start = Instant::now();
        barrier.wait();
        for w in workers {
            match w.join().expect("scaling client panicked") {
                Ok((q, m)) => {
                    queries += q;
                    mismatches += m;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        start.elapsed().as_secs_f64()
    });
    drop(idle);
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(ConnectionScalingReport {
        connections,
        active,
        queries,
        seconds,
        queries_per_second: if seconds > 0.0 {
            queries as f64 / seconds
        } else {
            0.0
        },
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeState;
    use hc2l_graph::toy::paper_figure1;
    use hc2l_oracle::{Method, OracleBuilder};
    use hc2l_roadnet::random_pairs;

    #[test]
    fn throughput_is_positive_and_counts_add_up() {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hc2l).build(&g);
        let state = Arc::new(ServeState::new(oracle, 4, 4096));
        let pairs = random_pairs(16, 200, 11);
        let report = measure_throughput(&state, &pairs, 4, 5);
        assert_eq!(report.threads, 4);
        assert_eq!(report.queries, 4 * 5 * 200);
        assert!(report.seconds > 0.0);
        assert!(report.queries_per_second > 0.0);
        // Replaying the same 200 pairs repeatedly must mostly hit.
        assert!(
            report.cache_hit_rate > 0.5,
            "hit rate {}",
            report.cache_hit_rate
        );
    }

    #[test]
    fn connection_scaling_verifies_answers_over_mostly_idle_connections() {
        use crate::server::{serve_with_model, ServeModel};
        use hc2l_oracle::DistanceOracle as _;
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hc2l).build(&g);
        let pairs = random_pairs(16, 100, 5);
        let expected: Vec<Distance> = pairs
            .iter()
            .map(|p| oracle.distance(p.source, p.target))
            .collect();
        let state = Arc::new(ServeState::new(oracle, 2, 1024));
        let server = serve_with_model(
            Arc::clone(&state),
            ("127.0.0.1", 0),
            ServeModel::platform_default(),
        )
        .unwrap();
        // 48 connections, only 4 active — the idle majority must cost
        // nothing and every answer must stay exact.
        let report =
            measure_connection_scaling(server.addr(), &pairs, &expected, 48, 4, 2).unwrap();
        assert_eq!(report.connections, 48);
        assert_eq!(report.active, 4);
        assert_eq!(report.queries, 4 * 2 * 100);
        assert_eq!(report.mismatches, 0);
        assert!(report.queries_per_second > 0.0);
        server.shutdown().unwrap();
    }

    #[test]
    fn disabled_cache_reports_zero_hit_rate() {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        let state = Arc::new(ServeState::new(oracle, 2, 0));
        let pairs = random_pairs(16, 50, 3);
        let report = measure_throughput(&state, &pairs, 2, 2);
        assert_eq!(report.cache_hit_rate, 0.0);
        assert!(report.queries_per_second > 0.0);
    }
}
