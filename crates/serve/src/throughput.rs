//! Aggregate-throughput measurement: N worker threads hammering one shared
//! [`ServeState`] in process.
//!
//! This is the number the serving story is judged by — how many exact
//! point-to-point queries per second one loaded index sustains across all
//! cores — measured *above* the cache and counters (the real serve path)
//! but below the socket layer, so it reports index + cache + contention
//! throughput rather than loopback-TCP throughput. The daemon's `--bench`
//! flag and the JSON bench's `queries_per_second` column both come from
//! here.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use hc2l_roadnet::QueryPair;

use crate::server::ServeState;

/// Result of one [`measure_throughput`] run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Total point-to-point queries answered across all workers.
    pub queries: u64,
    /// Wall-clock seconds from the start barrier to the last worker done.
    pub seconds: f64,
    /// Aggregate queries per second (`queries / seconds`).
    pub queries_per_second: f64,
    /// Cache hit rate over the run (0.0 when the cache is disabled).
    pub cache_hit_rate: f64,
}

/// Runs `threads` workers over the pair set, each replaying the whole set
/// `reps` times starting at a different offset (so workers don't march in
/// lockstep over the same keys), and reports aggregate queries/second.
///
/// Cache counters are read as a delta around the run, so a `ServeState`
/// that served other traffic before can still be measured. The distance
/// sum is accumulated and black-boxed to keep the optimiser honest.
pub fn measure_throughput(
    state: &Arc<ServeState>,
    pairs: &[QueryPair],
    threads: usize,
    reps: usize,
) -> ThroughputReport {
    assert!(!pairs.is_empty(), "cannot measure an empty workload");
    let threads = threads.max(1);
    let reps = reps.max(1);

    // One warmup pass (faults mapped pages in, fills the cache's working
    // set) before the timed section.
    let mut warm: u64 = 0;
    for p in pairs.iter().take(1024) {
        warm = warm.wrapping_add(state.distance(p.source, p.target));
    }
    std::hint::black_box(warm);
    // Counter baseline *after* the warmup, so the reported hit rate covers
    // exactly the timed run.
    let before = state.cache().stats();

    let start_barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let state = Arc::clone(state);
            let pairs = pairs.to_vec();
            let barrier = Arc::clone(&start_barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut sum: u64 = 0;
                let mut done: u64 = 0;
                // Stagger the starting offset per worker.
                let offset = (w * pairs.len()) / threads;
                for _ in 0..reps {
                    for i in 0..pairs.len() {
                        let p = pairs[(i + offset) % pairs.len()];
                        sum = sum.wrapping_add(state.distance(p.source, p.target));
                        done += 1;
                    }
                }
                std::hint::black_box(sum);
                done
            })
        })
        .collect();

    // The clock starts *before* releasing the barrier: workers cannot
    // proceed until this thread arrives, so the start is at most the
    // barrier-release overhead early — whereas starting the clock after
    // `wait()` returns would under-measure badly whenever the OS parks
    // this thread while the released workers run.
    let start = Instant::now();
    start_barrier.wait();
    let mut queries = 0u64;
    for w in workers {
        queries += w.join().expect("throughput worker panicked");
    }
    let seconds = start.elapsed().as_secs_f64();

    let after = state.cache().stats();
    let lookups = (after.hits + after.misses).saturating_sub(before.hits + before.misses);
    let hits = after.hits.saturating_sub(before.hits);
    ThroughputReport {
        threads,
        queries,
        seconds,
        queries_per_second: if seconds > 0.0 {
            queries as f64 / seconds
        } else {
            0.0
        },
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeState;
    use hc2l_graph::toy::paper_figure1;
    use hc2l_oracle::{Method, OracleBuilder};
    use hc2l_roadnet::random_pairs;

    #[test]
    fn throughput_is_positive_and_counts_add_up() {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hc2l).build(&g);
        let state = Arc::new(ServeState::new(oracle, 4, 4096));
        let pairs = random_pairs(16, 200, 11);
        let report = measure_throughput(&state, &pairs, 4, 5);
        assert_eq!(report.threads, 4);
        assert_eq!(report.queries, 4 * 5 * 200);
        assert!(report.seconds > 0.0);
        assert!(report.queries_per_second > 0.0);
        // Replaying the same 200 pairs repeatedly must mostly hit.
        assert!(
            report.cache_hit_rate > 0.5,
            "hit rate {}",
            report.cache_hit_rate
        );
    }

    #[test]
    fn disabled_cache_reports_zero_hit_rate() {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        let state = Arc::new(ServeState::new(oracle, 2, 0));
        let pairs = random_pairs(16, 50, 3);
        let report = measure_throughput(&state, &pairs, 2, 2);
        assert_eq!(report.cache_hit_rate, 0.0);
        assert!(report.queries_per_second > 0.0);
    }
}
