//! The serve layer's lock-free cores, written once over the
//! [`hc2l_check::facade`] atomics traits.
//!
//! Production code instantiates these with [`StdAtomics`] (the default type
//! parameter), which monomorphises to plain `std::sync::atomic` with zero
//! overhead. The model-check suite (`tests/model.rs`) instantiates the SAME
//! source with [`hc2l_check::shim::CheckAtomics`] and exhaustively explores
//! thread interleavings of the protocols below — so the code that ships is
//! the code that was checked, not a parallel "model" that can drift.
//!
//! Two protocols live here:
//!
//! * [`FrontCore`] — the direct-mapped seqlock array behind the query
//!   cache's lock-free front layer (`cache.rs` wraps it with sizing policy
//!   and striped hit counting). Invariant: a probe never returns a torn
//!   `(key, epoch, value)` triple.
//! * [`EpochMirror`] — the atomic mirror of the current index generation
//!   that the serving layer reads before probing the cache (`server.rs`).
//!   Invariant: after a swap publishes epoch `n`, no reader that loaded
//!   `n` can hit a cache entry tagged with an earlier generation — the
//!   mirror must be published *before* the new generation is reachable, so
//!   the race goes the safe way (a fresh-epoch miss, never a stale hit).

use std::sync::atomic::Ordering;

use hc2l_check::facade::{AtomicU64 as _, Atomics, StdAtomics};

/// One seqlock slot: `seq` is odd while a writer owns the slot and bumps by
/// 2 per publish, so an unchanged even `seq` around the data loads proves
/// the triple was not torn.
struct Slot<A: Atomics> {
    seq: A::U64,
    key: A::U64,
    epoch: A::U64,
    value: A::U64,
}

/// A direct-mapped array of per-slot seqlocks over `(key, epoch, value)`
/// triples — the core of the query cache's lock-free front layer.
///
/// Readers take no lock: a mid-write, overwritten, or mismatched slot reads
/// as a miss (`None`) and the caller falls through to its source of truth.
/// Writers claim a slot with one CAS and are free to lose the race — the
/// front is an accelerator, never authoritative storage. The payoff is a
/// steady-state hit path of five plain atomic loads with zero
/// `lock`-prefixed instructions.
pub struct FrontCore<A: Atomics = StdAtomics> {
    slots: Box<[Slot<A>]>,
    /// `64 - log2(slots.len())`, for fibonacci-hash slot selection.
    shift: u32,
}

impl<A: Atomics> FrontCore<A> {
    /// `num_slots` must be a power of two (direct mapping by high hash
    /// bits). Empty slots carry key `u64::MAX`, which callers must never
    /// use as a real key (the cache's packed vertex pairs cannot).
    pub fn new(num_slots: usize) -> Self {
        assert!(
            num_slots.is_power_of_two(),
            "FrontCore size must be a power of two, got {num_slots}"
        );
        FrontCore {
            slots: (0..num_slots)
                .map(|_| Slot {
                    seq: A::U64::new(0),
                    key: A::U64::new(u64::MAX),
                    epoch: A::U64::new(0),
                    value: A::U64::new(0),
                })
                .collect(),
            // Capped at 63 so the 1- and 2-slot tables model tests use
            // don't shift by the full word width; the mask in `slot_of`
            // keeps the index in range either way.
            shift: (64 - num_slots.trailing_zeros()).min(63),
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> &Slot<A> {
        let i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
        &self.slots[i & (self.slots.len() - 1)]
    }

    /// Lock-free probe; a mid-write, torn, or mismatched slot is a miss.
    #[inline]
    pub fn probe(&self, key: u64, epoch: u64) -> Option<u64> {
        let s = self.slot_of(key);
        let s0 = s.seq.load(Ordering::Acquire);
        if s0 & 1 != 0 {
            return None;
        }
        let k = s.key.load(Ordering::Relaxed);
        let e = s.epoch.load(Ordering::Relaxed);
        let v = s.value.load(Ordering::Relaxed);
        // The acquire fence pins the three data loads before the seq
        // re-read; an unchanged even seq proves they were not torn.
        A::fence(Ordering::Acquire);
        if s.seq.load(Ordering::Relaxed) != s0 || k != key || e != epoch {
            return None;
        }
        Some(v)
    }

    /// Best-effort publish; losing the claim race just skips the fill.
    #[inline]
    pub fn fill(&self, key: u64, value: u64, epoch: u64) {
        let s = self.slot_of(key);
        let s0 = s.seq.load(Ordering::Relaxed);
        if s0 & 1 != 0 {
            return;
        }
        if s.seq
            .compare_exchange(s0, s0 + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        s.key.store(key, Ordering::Relaxed);
        s.epoch.store(epoch, Ordering::Relaxed);
        s.value.store(value, Ordering::Relaxed);
        s.seq.store(s0 + 2, Ordering::Release);
    }
}

/// The atomic mirror of the current index generation (epoch).
///
/// The authoritative generation lives behind an `RwLock<Arc<Generation>>`;
/// this mirror exists so the query hot path can learn the epoch with one
/// acquire load instead of taking the read lock twice. The swap protocol
/// ([`EpochMirror::publish`] *before* the generation pointer swap, both
/// inside the writer's critical section) makes the unavoidable race benign:
/// a query that read the OLD epoch but runs against the NEW generation
/// misses the cache and recomputes — correct, merely unlucky — while the
/// reverse (new epoch, old generation) cannot produce a stale cache hit
/// because entries are tagged with the epoch they were computed at.
pub struct EpochMirror<A: Atomics = StdAtomics> {
    published: A::U64,
}

impl<A: Atomics> std::fmt::Debug for EpochMirror<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochMirror")
            .field("published", &self.load())
            .finish()
    }
}

impl<A: Atomics> EpochMirror<A> {
    pub fn new(epoch: u64) -> Self {
        EpochMirror {
            published: A::U64::new(epoch),
        }
    }

    /// Publishes a new epoch. Release pairs with the acquire in
    /// [`EpochMirror::load`]: a reader that observes the new epoch also
    /// observes every cache invalidation the writer did before publishing.
    #[inline]
    pub fn publish(&self, epoch: u64) {
        self.published.store(epoch, Ordering::Release);
    }

    /// The most recently published epoch.
    #[inline]
    pub fn load(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_misses_empty_and_hits_filled() {
        let f: FrontCore = FrontCore::new(1024);
        assert_eq!(f.probe(7, 0), None);
        f.fill(7, 42, 0);
        assert_eq!(f.probe(7, 0), Some(42));
        assert_eq!(f.probe(7, 1), None, "epoch mismatch is a miss");
        assert_eq!(f.probe(8, 0), None, "key mismatch is a miss");
    }

    #[test]
    fn fill_overwrites_in_place() {
        let f: FrontCore = FrontCore::new(8);
        f.fill(1, 10, 0);
        f.fill(1, 11, 1);
        assert_eq!(f.probe(1, 0), None);
        assert_eq!(f.probe(1, 1), Some(11));
    }

    #[test]
    fn epoch_mirror_roundtrips() {
        let m: EpochMirror = EpochMirror::new(0);
        assert_eq!(m.load(), 0);
        m.publish(3);
        assert_eq!(m.load(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_is_rejected() {
        let _: FrontCore = FrontCore::new(1000);
    }
}
