//! The event-driven connection model: N reactor threads, each owning an
//! epoll instance and a table of non-blocking connections.
//!
//! The blocking model (`crate::server::serve`) spends one OS thread per
//! connection — fine for a dozen clients, hopeless for the hundreds of
//! mostly-idle connections a deployed query daemon holds. Here,
//! [`run`] spawns `ServeState::threads` reactors; reactor 0 additionally
//! owns the (non-blocking) listener and deals accepted connections out
//! round-robin, handing a connection to a sibling through a mutex inbox
//! plus an `eventfd` wake. Each reactor then multiplexes its connections
//! with level-triggered `epoll_wait`:
//!
//! * **reads** pull whatever the socket has into an incremental
//!   [`FrameDecoder`](crate::protocol::FrameDecoder) — partial frames are
//!   carried across events, so a peer dribbling one byte per segment
//!   decodes exactly like one writing whole frames;
//! * **execution** goes through the same `respond` path as the blocking
//!   model (validation, counters, cache, streamed batch responses), with
//!   responses encoded into a per-connection write buffer;
//! * **writes** flush opportunistically and fall back to `EPOLLOUT`
//!   interest when the socket is full, with **backpressure**: while a
//!   connection owes [`HIGH_WATER`] or more unflushed bytes, its reads are
//!   paused (EPOLLIN deregistered) and no further requests are executed, so
//!   a client that stops reading cannot balloon server memory;
//! * **weight updates** are offloaded: absorbing an `UpdateWeights` batch
//!   can take index-rebuild time, and a reactor thread must never stall its
//!   other connections that long — the batch runs on a spawned worker
//!   thread, the requesting connection pauses (no further frames execute,
//!   preserving per-connection response order) and resumes when the worker
//!   deposits the encoded response in the reactor's completion inbox and
//!   wakes it. Every other connection keeps querying throughout, on the old
//!   index generation until the swap, on the new one after;
//! * **reaping** — every [`SWEEP_INTERVAL`] each reactor walks its table
//!   and drops connections that have made no progress within their budget:
//!   `ServeConfig::idle_timeout` at a frame boundary with nothing owed,
//!   `ServeConfig::stall_timeout` mid-frame or with undrained responses —
//!   so a slow-loris peer dribbling a header forever, or one that stops
//!   reading its answers, costs a bounded amount of state, not a slot
//!   forever. Connections awaiting an offloaded update are exempt (the
//!   delay is the server's, not the peer's);
//! * **shutdown** is polled on every `epoll_wait` timeout and broadcast
//!   over the wake fds, then each reactor drains: stops accepting, gives
//!   every connection a bounded window (`ServeConfig::drain`, the daemon's
//!   `--drain-secs`, default 3s) to take its final flushed bytes, and exits
//!   — an idle connection or a half-written frame can delay exit by at most
//!   that window, never hang it.
//!
//! The epoll/eventfd bindings are direct `extern "C"` declarations,
//! mirroring the `mmap` precedent in `hc2l_graph::container` — no new
//! dependencies, and the whole module is `target_os = "linux"`; other
//! platforms fall back to the blocking model via `ServeModel::effective`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hc2l_graph::Distance;

use crate::protocol::{write_response, FrameDecoder, Request, Response};
use crate::server::{respond, ServeState};

/// Raw epoll / eventfd bindings (see the module docs for why these are
/// hand-declared rather than pulled from a crate).
mod sys {
    use std::ffi::c_void;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    /// `O_CLOEXEC` / `O_NONBLOCK`, shared by `epoll_create1` and `eventfd`.
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// Mirrors the kernel's `struct epoll_event`; x86-64 is the one ABI
    /// where it is packed (the 32-bit layout was kept on 64-bit).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Backpressure threshold: while a connection owes this many unflushed
/// response bytes, its reads are paused and no further requests execute.
/// One maximal response frame (≈16MB) still buffers atomically — the mark
/// bounds *additional* pile-up, not a single frame.
const HIGH_WATER: usize = 1 << 20;

/// `epoll_wait` timeout — the upper bound on how stale a reactor's view of
/// the shutdown flag can be (wake fds make the common cases immediate).
const EPOLL_TIMEOUT_MS: i32 = 25;

/// How often each reactor sweeps its connection table for peers that blew
/// their idle or stall budget (`ServeConfig::{idle_timeout, stall_timeout}`;
/// the drain window itself comes from `ServeConfig::drain`, the daemon's
/// `--drain-secs`, default 3s).
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);

/// Read-syscall chunk size (one shared scratch buffer per reactor).
const READ_CHUNK: usize = 64 << 10;

/// Events fetched per `epoll_wait`.
const MAX_EVENTS: usize = 256;

/// Reactors above this count stop paying for themselves — each one is a
/// full query-executing thread.
const MAX_REACTORS: usize = 16;

/// `epoll_event.data` sentinel for the wake eventfd.
const DATA_WAKE: u64 = u64::MAX;
/// `epoll_event.data` sentinel for the listener.
const DATA_LISTENER: u64 = u64::MAX - 1;

/// Thin RAII epoll handle.
struct Epoll(i32);

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd (or -1)
        // is validated below before use.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll(fd))
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events, data };
        let arg = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut sys::EpollEvent
        };
        // SAFETY: `arg` is either null (DEL, where the kernel ignores it)
        // or a live pointer to `ev` on this stack frame for the duration of
        // the call; the kernel only reads through it.
        if unsafe { sys::epoll_ctl(self.0, op, fd, arg) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, data)
    }

    fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, data)
    }

    fn del(&self, fd: i32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for events; EINTR reads as "no events" rather than an error.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the pointer/len pair comes straight from the `events`
        // slice, which outlives the call; the kernel writes at most `len`
        // entries of the POD `EpollEvent` type.
        let n = unsafe {
            sys::epoll_wait(self.0, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd (created in `new`, never duplicated out);
        // closing it at most once takes no pointers.
        unsafe { sys::close(self.0) };
    }
}

/// An `eventfd`-backed waker: any thread can nudge a reactor out of
/// `epoll_wait` (new handed-over connection, shutdown broadcast).
struct WakeFd(i32);

impl WakeFd {
    fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd takes no pointers; the returned fd (or -1) is
        // validated below before use.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd(fd))
    }

    fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly the 8 bytes of `one`, which lives on this
        // stack frame for the duration of the call.
        let _ = unsafe { sys::write(self.0, (&one as *const u64).cast(), 8) };
    }

    /// Clears the pending wake count so level-triggered epoll quiets down.
    fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reads at most the 8 bytes of `count`, which lives on this
        // stack frame for the duration of the call.
        let _ = unsafe { sys::read(self.0, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd (created in `new`, never duplicated out);
        // closing it at most once takes no pointers.
        unsafe { sys::close(self.0) };
    }
}

/// A finished weight-update batch on its way back to the connection that
/// requested it: the already-encoded response frame, addressed by fd plus
/// the connection token (fds are recycled; tokens are not, so a completion
/// for a connection that died mid-update is dropped instead of being
/// delivered to an unrelated newcomer on the same fd).
struct UpdateDone {
    fd: i32,
    token: u64,
    frame: Vec<u8>,
}

/// The cross-thread face of one reactor: where reactor 0 deposits accepted
/// connections, where update workers deposit finished batches, and how
/// anyone interrupts its `epoll_wait`.
struct ReactorHandle {
    wake: WakeFd,
    inbox: Mutex<Vec<TcpStream>>,
    done: Mutex<Vec<UpdateDone>>,
}

impl ReactorHandle {
    fn new() -> io::Result<ReactorHandle> {
        Ok(ReactorHandle {
            wake: WakeFd::new()?,
            inbox: Mutex::new(Vec::new()),
            done: Mutex::new(Vec::new()),
        })
    }
}

/// What frame-processing needs beyond the connection itself: the shared
/// state and, for update offloading, the reactor's own identity (worker
/// threads address completions back to `handles[id]`).
struct ReactorCtx<'a> {
    state: &'a Arc<ServeState>,
    handles: &'a Arc<Vec<ReactorHandle>>,
    id: usize,
}

/// Per-connection state: socket, incremental decoder, write buffer with
/// flush cursor, and the reused batch buffer (so steady-state one-to-many
/// serving allocates nothing per request — same property as the blocking
/// model's per-thread buffer).
struct Conn {
    stream: TcpStream,
    /// Distinguishes this connection from any later one recycled onto the
    /// same fd (update completions are addressed by `(fd, token)`).
    token: u64,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    batch_buf: Vec<Distance>,
    /// Event mask currently registered with epoll.
    interest: u32,
    /// No further requests will be executed (shutdown acknowledged, or a
    /// protocol error); the connection closes once `out` drains.
    closing: bool,
    /// The peer closed its write side; buffered frames still execute.
    read_eof: bool,
    /// An `UpdateWeights` batch is running on a worker thread; no further
    /// frames execute until its completion lands (responses stay ordered),
    /// and reads are paused like under backpressure.
    awaiting_update: bool,
    /// When this connection last made progress — bytes read from it, or
    /// response bytes it accepted. The reaping sweep compares this against
    /// the idle budget (at a frame boundary, nothing owed) or the stall
    /// budget (partial frame buffered, or responses it will not drain).
    last_progress: Instant,
}

/// Source of connection tokens (process-wide, never recycled).
static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            batch_buf: Vec::new(),
            interest: 0,
            closing: false,
            read_eof: false,
            awaiting_update: false,
            last_progress: Instant::now(),
        }
    }

    /// Response bytes queued but not yet accepted by the socket.
    fn pending_write(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// The event mask a connection should be registered with right now.
fn desired_interest(conn: &Conn) -> u32 {
    let mut ev = sys::EPOLLRDHUP;
    if !conn.closing && !conn.read_eof && !conn.awaiting_update && conn.pending_write() < HIGH_WATER
    {
        ev |= sys::EPOLLIN;
    }
    if conn.pending_write() > 0 {
        ev |= sys::EPOLLOUT;
    }
    ev
}

/// Flushes as much of the write buffer as the socket will take, returning
/// how many bytes it accepted (progress, for the reaping sweep).
/// `Err` means the connection is dead.
fn flush(conn: &mut Conn) -> io::Result<usize> {
    let mut accepted = 0;
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out_pos += n;
                accepted += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        // A 16MB batch response must not stay pinned by an idle connection.
        if conn.out.capacity() > (2 << 20) {
            conn.out.shrink_to(64 << 10);
        }
    } else if conn.out_pos >= (1 << 20) {
        // Partially flushed giant buffer: drop the consumed prefix.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    Ok(accepted)
}

/// Decodes and executes buffered requests until input runs dry, the
/// connection is closing, an offloaded update pauses it, or backpressure
/// pauses it. A decode error is a protocol error: the connection stops
/// reading and will be dropped (after a best-effort flush), exactly like
/// the blocking model.
fn process_frames(conn: &mut Conn, ctx: &ReactorCtx, shutdown_seen: &mut bool) -> io::Result<()> {
    while !conn.closing && !conn.awaiting_update && conn.pending_write() < HIGH_WATER {
        let Some(req) = conn.decoder.next_request()? else {
            break;
        };
        if let Request::UpdateWeights(updates) = req {
            // Offloaded: the reactor must keep serving its other
            // connections while the batch (potentially an index rebuild)
            // absorbs on a worker thread. This connection pauses so its
            // responses stay in request order.
            spawn_update_worker(ctx, conn, updates);
            continue; // loop exits via awaiting_update (or error queued)
        }
        if respond(ctx.state, &req, &mut conn.out, &mut conn.batch_buf)? {
            *shutdown_seen = true;
            conn.closing = true;
        }
    }
    Ok(())
}

/// Starts a worker thread absorbing `updates` for `conn`. On the (resource
/// exhaustion) failure to spawn, a typed error response is queued instead —
/// the protocol stays in lockstep either way.
fn spawn_update_worker(ctx: &ReactorCtx, conn: &mut Conn, updates: Vec<hc2l_oracle::WeightUpdate>) {
    let state = Arc::clone(ctx.state);
    let handles = Arc::clone(ctx.handles);
    let id = ctx.id;
    let fd = conn.stream.as_raw_fd();
    let token = conn.token;
    let spawned = std::thread::Builder::new()
        .name("hc2l-serve-update".into())
        .spawn(move || {
            let resp = match state.try_apply_updates(&updates) {
                Ok(outcome) => Response::Updated(outcome),
                Err(e) => e.into_response(),
            };
            let mut frame = Vec::new();
            if write_response(&mut frame, &resp).is_ok() {
                handles[id]
                    .done
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(UpdateDone { fd, token, frame });
                handles[id].wake.wake();
            }
        });
    match spawned {
        Ok(_) => conn.awaiting_update = true,
        Err(_) => {
            let _ = write_response(
                &mut conn.out,
                &Response::Error("update worker could not be spawned; retry".into()),
            );
        }
    }
}

/// Per-event read budget of [`drive_conn`]: a client that pipelines
/// requests as fast as the reactor answers them would otherwise never hit
/// `WouldBlock`, monopolising its reactor — siblings on the same epoll
/// would starve and the shutdown flag would go unchecked for as long as
/// the flood lasts. Once the budget is spent the connection yields back to
/// `epoll_wait`; level-triggered `EPOLLIN` re-delivers it immediately if
/// bytes remain, now interleaved fairly with every other ready connection.
const READ_BUDGET: usize = 1 << 20;

/// Drives one connection as far as it can go without blocking:
/// execute buffered frames → flush → read more, repeated until the socket
/// runs dry, backpressure pauses the reads, or the per-event
/// [`READ_BUDGET`] is spent. Returns `false` when the connection should be
/// closed now.
fn drive_conn(
    conn: &mut Conn,
    ctx: &ReactorCtx,
    scratch: &mut [u8],
    shutdown_seen: &mut bool,
) -> bool {
    let mut budget = READ_BUDGET;
    loop {
        if process_frames(conn, ctx, shutdown_seen).is_err() {
            // Protocol error: no more requests from this peer; whatever
            // responses are already owed still flush, then it drops.
            conn.closing = true;
        }
        match flush(conn) {
            Ok(0) => {}
            Ok(_) => conn.last_progress = Instant::now(),
            Err(_) => {
                ctx.state.note_write_error();
                return false;
            }
        }
        // Backpressure resume: if the flush freed room below the high-water
        // mark and complete frames are already buffered (paused by an
        // earlier pass), execute them before touching the socket again —
        // otherwise a client waiting on those answers before sending (or
        // one that already half-closed) would strand them forever.
        if !conn.closing
            && !conn.awaiting_update
            && conn.pending_write() < HIGH_WATER
            && conn.decoder.has_complete_frame()
        {
            continue;
        }
        if conn.closing || conn.read_eof || conn.awaiting_update {
            break;
        }
        if conn.pending_write() >= HIGH_WATER {
            break; // backpressure: EPOLLIN comes off via desired_interest
        }
        // Fairness yield — placed after the resume check, so no complete
        // frame can be left stranded: if bytes remain in the socket,
        // EPOLLIN fires again on the very next wait.
        if budget == 0 {
            break;
        }
        match conn.stream.read(scratch) {
            // EOF: loop once more so frames the peer pipelined before
            // half-closing still execute and answer.
            Ok(0) => conn.read_eof = true,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                conn.last_progress = Instant::now();
                conn.decoder.feed(&scratch[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // An abrupt reset (not a clean FIN): the peer vanished with
                // I/O outstanding — same event the threads model surfaces
                // as a broken-pipe write, counted the same way.
                ctx.state.note_write_error();
                return false;
            }
        }
    }
    // The loop exits past EOF only once no complete frame remains decodable
    // below the high-water mark — so under the mark, input is truly
    // exhausted and the connection lives only until its writes drain. A
    // connection awaiting an offloaded update stays alive regardless: its
    // response is still owed.
    let input_done = conn.closing
        || (conn.read_eof && !conn.awaiting_update && conn.pending_write() < HIGH_WATER);
    !(input_done && conn.pending_write() == 0)
}

/// Registers a fresh connection with this reactor and drives it once
/// (a fast client may have written its first request already).
fn register_conn(
    epoll: &Epoll,
    conns: &mut HashMap<i32, Conn>,
    stream: TcpStream,
    ctx: &ReactorCtx,
    scratch: &mut [u8],
    shutdown_seen: &mut bool,
) {
    stream.set_nodelay(true).ok();
    if stream.set_nonblocking(true).is_err() {
        return; // peer sees a reset and can retry
    }
    let fd = stream.as_raw_fd();
    let mut conn = Conn::new(stream);
    if !drive_conn(&mut conn, ctx, scratch, shutdown_seen) {
        return;
    }
    conn.interest = desired_interest(&conn);
    if epoll.add(fd, conn.interest, fd as u64).is_err() {
        return;
    }
    conns.insert(fd, conn);
}

/// Accepts until the backlog is empty, registering local connections and
/// dealing the rest round-robin to sibling reactors. A fatal listener
/// error propagates; transient per-connection failures are skipped.
fn accept_burst(
    listener: &TcpListener,
    epoll: &Epoll,
    ctx: &ReactorCtx,
    next_target: &mut usize,
    conns: &mut HashMap<i32, Conn>,
    scratch: &mut [u8],
    shutdown_seen: &mut bool,
) -> io::Result<()> {
    let handles = ctx.handles.as_slice();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.state.note_accepted();
                let target = *next_target % handles.len();
                *next_target += 1;
                if target == ctx.id {
                    register_conn(epoll, conns, stream, ctx, scratch, shutdown_seen);
                } else {
                    // Hand over non-blocking already, so the sibling never
                    // risks a blocking call on it.
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    handles[target]
                        .inbox
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(stream);
                    handles[target].wake.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// One reactor thread. Reactor 0 passes the listener; the rest serve only
/// handed-over connections. Runs until shutdown is requested and the drain
/// completes.
fn reactor_loop(
    id: usize,
    listener: Option<TcpListener>,
    state: Arc<ServeState>,
    handles: Arc<Vec<ReactorHandle>>,
) -> io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(handles[id].wake.0, sys::EPOLLIN, DATA_WAKE)?;
    if let Some(l) = &listener {
        epoll.add(l.as_raw_fd(), sys::EPOLLIN, DATA_LISTENER)?;
    }
    let ctx = ReactorCtx {
        state: &state,
        handles: &handles,
        id,
    };
    let mut conns: HashMap<i32, Conn> = HashMap::new();
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut next_target = id;
    let mut draining: Option<Instant> = None;
    let mut last_sweep = Instant::now();
    let mut result: io::Result<()> = Ok(());

    loop {
        if state.is_shutting_down() && draining.is_none() {
            // Enter the drain: stop accepting, close everything that owes
            // the peer nothing, give the rest a bounded flush window.
            draining = Some(Instant::now() + state.config().drain);
            if let Some(l) = &listener {
                let _ = epoll.del(l.as_raw_fd());
            }
            conns.retain(|&fd, c| {
                c.closing = true;
                let dead = match flush(c) {
                    Ok(_) => false,
                    Err(_) => {
                        state.note_write_error();
                        true
                    }
                };
                if dead || c.pending_write() == 0 {
                    let _ = epoll.del(fd);
                    return false;
                }
                let want = desired_interest(c);
                if want != c.interest && epoll.modify(fd, want, fd as u64).is_ok() {
                    c.interest = want;
                }
                true
            });
        }
        if let Some(deadline) = draining {
            if conns.is_empty() || Instant::now() >= deadline {
                break;
            }
        }

        let nev = match epoll.wait(&mut events, EPOLL_TIMEOUT_MS) {
            Ok(n) => n,
            Err(e) => {
                result = Err(e);
                state.request_shutdown();
                break;
            }
        };
        let mut shutdown_seen = false;
        for ev in &events[..nev] {
            // Copy the (possibly packed) fields out before matching.
            let data = ev.data;
            let evs = ev.events;
            match data {
                DATA_WAKE => handles[id].wake.drain(),
                DATA_LISTENER => {
                    if draining.is_some() {
                        continue;
                    }
                    let Some(l) = &listener else { continue };
                    if let Err(e) = accept_burst(
                        l,
                        &epoll,
                        &ctx,
                        &mut next_target,
                        &mut conns,
                        &mut scratch,
                        &mut shutdown_seen,
                    ) {
                        // Fatal accept error (fd exhaustion, listener
                        // teardown): stop the whole server through the
                        // drain, never abandoning live connections.
                        result = Err(e);
                        state.request_shutdown();
                        shutdown_seen = true;
                    }
                }
                _ => {
                    let fd = data as i32;
                    let Some(conn) = conns.get_mut(&fd) else {
                        continue; // stale event for a just-closed fd
                    };
                    if evs & sys::EPOLLERR != 0 {
                        // Asynchronous socket error — the peer reset with
                        // data in flight; counted like a broken-pipe write.
                        state.note_write_error();
                    }
                    let keep = evs & sys::EPOLLERR == 0
                        && drive_conn(conn, &ctx, &mut scratch, &mut shutdown_seen);
                    if keep {
                        let want = desired_interest(conn);
                        if want != conn.interest && epoll.modify(fd, want, fd as u64).is_ok() {
                            conn.interest = want;
                        }
                    } else {
                        let _ = epoll.del(fd);
                        conns.remove(&fd);
                    }
                }
            }
        }

        // Deliver finished weight-update batches to the connections that
        // requested them: queue the encoded response, unpause, and re-drive
        // (frames the peer pipelined behind the update now execute, on the
        // new generation). A completion whose connection died mid-update —
        // or whose fd was recycled (token mismatch) — is dropped.
        let done: Vec<UpdateDone> = std::mem::take(
            &mut *handles[id]
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for d in done {
            let Some(conn) = conns.get_mut(&d.fd) else {
                continue;
            };
            if conn.token != d.token {
                continue;
            }
            conn.awaiting_update = false;
            conn.out.extend_from_slice(&d.frame);
            if drive_conn(conn, &ctx, &mut scratch, &mut shutdown_seen) {
                let want = desired_interest(conn);
                if want != conn.interest && epoll.modify(d.fd, want, d.fd as u64).is_ok() {
                    conn.interest = want;
                }
            } else {
                let _ = epoll.del(d.fd);
                conns.remove(&d.fd);
            }
        }

        // Adopt connections reactor 0 handed over (dropped when already
        // shutting down — the peer sees a reset, same as a refused accept).
        let newcomers: Vec<TcpStream> = std::mem::take(
            &mut *handles[id]
                .inbox
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for stream in newcomers {
            if draining.is_some() || state.is_shutting_down() {
                continue;
            }
            register_conn(
                &epoll,
                &mut conns,
                stream,
                &ctx,
                &mut scratch,
                &mut shutdown_seen,
            );
        }

        // Reap connections that blew their progress budget: a slow-loris
        // peer stuck mid-frame (or refusing to drain its responses) gets
        // the stall budget; a quiet one at a frame boundary gets the idle
        // budget. Connections awaiting an offloaded update are exempt —
        // the pending response is the server's latency, not the peer's.
        if draining.is_none() && last_sweep.elapsed() >= SWEEP_INTERVAL {
            last_sweep = Instant::now();
            let cfg = state.config();
            conns.retain(|&fd, c| {
                if c.awaiting_update {
                    return true;
                }
                let stalled = !c.decoder.is_idle() || c.pending_write() > 0;
                let budget = if stalled {
                    cfg.stall_timeout
                } else {
                    cfg.idle_timeout
                };
                match budget {
                    Some(b) if c.last_progress.elapsed() >= b => {
                        state.note_reaped();
                        let _ = epoll.del(fd);
                        false
                    }
                    _ => true,
                }
            });
        }

        if shutdown_seen {
            // A wire Shutdown landed on this reactor; siblings find out now
            // instead of at their next timeout.
            for h in handles.iter() {
                h.wake.wake();
            }
        }
    }
    result
}

/// Runs the epoll connection model on `listener` until shutdown: spawns
/// `state.threads() - 1` sibling reactors (capped at [`MAX_REACTORS`]) and
/// runs reactor 0 — listener owner — on the calling thread. Returns after
/// every reactor has drained; the first error (if any) wins.
pub(crate) fn run(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    let n = state.threads().clamp(1, MAX_REACTORS);
    let handles: Vec<ReactorHandle> = (0..n)
        .map(|_| ReactorHandle::new())
        .collect::<io::Result<_>>()?;
    let handles = Arc::new(handles);
    let mut joins = Vec::new();
    for id in 1..n {
        let st = Arc::clone(&state);
        let hs = Arc::clone(&handles);
        let spawned = std::thread::Builder::new()
            .name(format!("hc2l-serve-reactor-{id}"))
            .spawn(move || reactor_loop(id, None, st, hs));
        match spawned {
            Ok(j) => joins.push(j),
            Err(e) => {
                // Could not build the full fleet: stop the ones that exist.
                state.request_shutdown();
                for h in handles.iter() {
                    h.wake.wake();
                }
                for j in joins {
                    let _ = j.join();
                }
                return Err(e);
            }
        }
    }
    let mut result = reactor_loop(0, Some(listener), Arc::clone(&state), Arc::clone(&handles));
    // Reactor 0 only returns once shutdown is requested (it requests it
    // itself on fatal errors); make sure no sibling sleeps through the news.
    for h in handles.iter() {
        h.wake.wake();
    }
    for j in joins {
        match j.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if result.is_ok() {
                    result = Err(e);
                }
            }
            Err(_) => {
                if result.is_ok() {
                    result = Err(io::Error::other("reactor thread panicked"));
                }
            }
        }
    }
    result
}
