//! The length-prefixed binary wire protocol between `hc2l-serve` and its
//! clients.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  --------------------------------------------
//!      0     4  payload length in bytes (u32, little-endian)
//!      4     1  opcode
//!      5     …  opcode-specific fields (little-endian integers)
//! ```
//!
//! Requests: `Distance(s, t)`, `OneToMany(s, targets…)`,
//! `UpdateWeights(batch…)`, `Stats`, `Shutdown`. Responses mirror them, plus
//! two terminal variants with distinct retry semantics: `Error(message)` for
//! malformed or out-of-range requests (not retryable as-is, but the
//! connection stays usable — a bad query must not take down a worker) and
//! `Overloaded(message)` for well-formed requests shed before execution
//! (always safe to retry verbatim after a backoff).
//!
//! The codec is hand-rolled over `std::io::{Read, Write}` (the workspace
//! builds offline; the vendored serde is marker-only) and defensive in both
//! directions: frames are capped at [`MAX_FRAME_BYTES`] and every decode
//! error is a typed `io::Error`, so a garbage-spewing peer cannot make the
//! server allocate unboundedly or panic.
//!
//! Two decoders share one payload grammar: the blocking
//! [`read_request`]/[`read_response`] pair (used by the thread-per-connection
//! model and the clients, where a partial frame simply blocks the reader)
//! and the incremental [`FrameDecoder`] (used by the epoll reactor, where
//! non-blocking reads deliver frames in arbitrary fragments and the decoder
//! must carry state across calls).

use std::io::{self, Read, Write};

use hc2l_graph::{Distance, Vertex};
use hc2l_oracle::WeightUpdate;

/// Upper bound on one frame's payload (compare: a one-to-many request of
/// 1M targets is 4MB). Anything larger is rejected as malformed — by both
/// decoders on the way in, and by [`write_frame`]'s typed error on the way
/// out, so an oversized frame can never even be produced.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Largest one-to-many batch the server accepts.
///
/// Both encodings must stay under [`MAX_FRAME_BYTES`] for a batch of `N`:
///
/// * request payload: 1 (opcode) + 4 (source) + 4 (count) + 4·N, and
/// * response payload: 1 (opcode) + 4 (count) + 8·N —
///
/// the response is twice as wide per entry, so it binds:
/// `N = (MAX_FRAME_BYTES - 5) / 8`. A batch of exactly this size round-trips
/// in both directions (the request frame is then well under the cap); one
/// more target would push the *response* payload over the cap, so the server
/// answers larger requests with [`Response::Error`] and clients chunk
/// instead. The boundary is pinned by tests on both decoders.
pub const MAX_ONE_TO_MANY_TARGETS: usize = (MAX_FRAME_BYTES - 5) / 8;

// The derivation above, pinned at compile time: a cap-sized batch fits both
// encodings, one more target overflows the response.
const _: () = {
    assert!(1 + 4 + 4 + 4 * MAX_ONE_TO_MANY_TARGETS <= MAX_FRAME_BYTES);
    assert!(1 + 4 + 8 * MAX_ONE_TO_MANY_TARGETS <= MAX_FRAME_BYTES);
    assert!(1 + 4 + 8 * (MAX_ONE_TO_MANY_TARGETS + 1) > MAX_FRAME_BYTES);
};

/// Largest weight-update batch one frame can carry. The request payload is
/// 1 (opcode) + 4 (count) + 12·N (u, v, new_weight as u32 each), and the
/// response is a fixed-size report, so only the request binds:
/// `N = (MAX_FRAME_BYTES - 5) / 12` ≈ 1.4M updates per frame — far beyond
/// any realistic traffic tick; larger feeds chunk into multiple frames.
pub const MAX_UPDATE_BATCH: usize = (MAX_FRAME_BYTES - 5) / 12;

// Pinned like the one-to-many cap: a cap-sized batch fits, one more update
// overflows the request payload.
const _: () = {
    assert!(1 + 4 + 12 * MAX_UPDATE_BATCH <= MAX_FRAME_BYTES);
    assert!(1 + 4 + 12 * (MAX_UPDATE_BATCH + 1) > MAX_FRAME_BYTES);
};

mod op {
    pub const DISTANCE: u8 = 1;
    pub const ONE_TO_MANY: u8 = 2;
    pub const STATS: u8 = 3;
    pub const SHUTDOWN: u8 = 4;
    pub const UPDATE_WEIGHTS: u8 = 5;
    pub const METRICS: u8 = 6;
    pub const OVERLOADED: u8 = 0xFE;
    pub const ERROR: u8 = 0xFF;
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact point-to-point distance.
    Distance(Vertex, Vertex),
    /// Batched distances from one source to many targets.
    OneToMany {
        /// Source vertex.
        source: Vertex,
        /// Target vertices, answered in order.
        targets: Vec<Vertex>,
    },
    /// Apply a batch of edge re-weightings to the served index; subsequent
    /// queries (on any connection) answer on the re-weighted graph.
    UpdateWeights(Vec<WeightUpdate>),
    /// Server counters and index identification.
    Stats,
    /// The full metrics surface in Prometheus text exposition format
    /// (every counter of [`ServerStats`] plus per-opcode latency
    /// percentiles) — what `hc2l-query --metrics` scrapes.
    Metrics,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Distance`].
    Distance(Distance),
    /// Answer to [`Request::OneToMany`], parallel to the request's targets.
    Distances(Vec<Distance>),
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::Metrics`]: the Prometheus text exposition
    /// document (UTF-8).
    Metrics(String),
    /// Answer to [`Request::UpdateWeights`]: how the batch was absorbed.
    Updated(UpdateOutcome),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// The server shed this request *before executing any of it* — the
    /// query path is at its admission cap, or an update batch is already
    /// being absorbed. Unlike [`Response::Error`], the request itself was
    /// well-formed: retrying the identical frame after a backoff is always
    /// safe (nothing was applied), and the connection stays usable.
    Overloaded(String),
    /// The request was malformed or out of range; the connection survives.
    Error(String),
}

/// Wire form of an absorbed weight-update batch (the serve-side view of
/// `hc2l_oracle::UpdateReport`, plus the index generation it produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateOutcome {
    /// `UpdateStrategy::tag()` of the strategy that absorbed the batch
    /// (1 = ch-customize, 2 = hc2l-relabel, 3 = rebuild).
    pub strategy_tag: u32,
    /// Updates that named an existing edge and were applied.
    pub applied: u64,
    /// Updates skipped for naming a missing edge or out-of-range vertex.
    pub rejected: u64,
    /// Wall-clock microseconds spent absorbing the batch.
    pub micros: u64,
    /// Index generation now being served; every query answered after this
    /// response was sent reflects at least this generation.
    pub epoch: u64,
}

/// Counters and identification reported by [`Request::Stats`] — which
/// backend is loaded travels as the container method tag, so the client
/// renders the proper display name via `Method::from_tag(..)` without
/// string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Container method tag of the served index (`Method::tag`).
    pub method_tag: u32,
    /// Active min-plus kernel of the serving process
    /// (`hc2l_graph::KernelKind::tag`): 1 = scalar, 2 = avx2, 3 = neon.
    pub kernel_tag: u32,
    /// Vertices of the indexed graph.
    pub num_vertices: u64,
    /// Container file size in bytes.
    pub index_bytes: u64,
    /// Worker-thread cap of the serve loop.
    pub threads: u32,
    /// Whether the index is served from a file mapping.
    pub mapped: bool,
    /// Point-to-point queries answered.
    pub distance_queries: u64,
    /// One-to-many requests answered.
    pub one_to_many_queries: u64,
    /// Total targets across all one-to-many requests.
    pub one_to_many_targets: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache resident entries.
    pub cache_len: u64,
    /// Result-cache capacity (0 = disabled).
    pub cache_capacity: u64,
    /// `UpdateWeights` batches absorbed since startup.
    pub update_batches: u64,
    /// Index generation currently being served (0 until the first update).
    pub epoch: u64,
    /// Connections accepted since startup (both connection models).
    pub connections_accepted: u64,
    /// Connections the server closed for exceeding an idle or stall budget
    /// (slow-loris clients, dead peers mid-frame, unread responses).
    pub connections_reaped: u64,
    /// Request-handler panics caught and converted into error responses
    /// (the daemon keeps serving; a nonzero value deserves investigation).
    pub panics_caught: u64,
    /// Requests shed with [`Response::Overloaded`] before execution.
    pub overload_rejections: u64,
    /// Response writes that failed because the peer was gone (broken pipe /
    /// connection reset); the worker survives and the connection is closed.
    pub write_errors: u64,
    /// Distance-query latency percentiles in nanoseconds (cache hits and
    /// misses merged), from the server's per-opcode histograms. Zero until
    /// the first query. The full hit/miss split lives on the `Metrics`
    /// frame; these headline numbers ride along on `Stats` so one frame
    /// answers "is the tail healthy".
    pub distance_p50_ns: u64,
    pub distance_p90_ns: u64,
    pub distance_p99_ns: u64,
    pub distance_p999_ns: u64,
    pub distance_max_ns: u64,
    /// One-to-many request latency percentiles (whole batches) in ns.
    pub one_to_many_p50_ns: u64,
    pub one_to_many_p99_ns: u64,
    /// Absorbed `UpdateWeights` batch latency percentiles in ns.
    pub update_p50_ns: u64,
    pub update_p99_ns: u64,
}

impl ServerStats {
    /// Cache hits over total lookups, 0.0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests). EOF anywhere *inside* a
/// frame — including partway through the length prefix — is an error: the
/// first prefix byte alone distinguishes "no next frame" from "truncated
/// frame".
fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(bad("EOF inside a frame length prefix")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    check_frame_len(len)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The shared frame-length gate of both decoders (and, inverted, of the
/// encoder): zero-length and over-cap frames are malformed.
fn check_frame_len(len: usize) -> io::Result<()> {
    if len == 0 {
        return Err(bad("empty frame"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    Ok(())
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    // Enforced (not just debug-asserted): a peer that rejects oversized
    // frames as malformed must never be handed one, release builds included.
    check_frame_len(payload.len())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame decoder for non-blocking connections.
///
/// The epoll reactor reads whatever the socket has — possibly one byte,
/// possibly three and a half frames — and [`feed`](FrameDecoder::feed)s it
/// here; [`next_request`](FrameDecoder::next_request) then yields each
/// complete frame as it materialises. Defensiveness matches the blocking
/// decoder exactly: the length prefix is validated the moment its four
/// bytes are in (an over-cap or zero length fails typed *before* any
/// payload is buffered, so a hostile peer cannot make the decoder allocate
/// beyond [`MAX_FRAME_BYTES`]), and a connection that hits EOF while
/// [`is_idle`](FrameDecoder::is_idle) is false was truncated mid-frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Bytes received but not yet decoded; `pos` marks the consumed prefix,
    /// compacted whenever a frame completes so the buffer never outgrows
    /// one frame plus one read's worth of fragments.
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes received from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= (64 << 10) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the decoder sits at a frame boundary (no partial frame
    /// buffered). EOF while this is `false` means the peer truncated a
    /// frame — the same condition the blocking decoder reports as an error.
    pub fn is_idle(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the next `next_request`/`next_response` call would make
    /// progress — a complete frame is buffered, or a malformed length
    /// prefix will fail typed. The reactor uses this to resume execution of
    /// backpressure-paused frames without waiting for (possibly never
    /// arriving) socket readability.
    pub fn has_complete_frame(&self) -> bool {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return false;
        }
        // lint:allow(no-panic): pending.len() >= 4 checked above, so the 4-byte try_into cannot fail
        let len = u32::from_le_bytes(pending[..4].try_into().unwrap()) as usize;
        if check_frame_len(len).is_err() {
            return true; // the next decode call errors immediately
        }
        pending.len() >= 4 + len
    }

    /// Pops the next complete frame payload, `Ok(None)` while more bytes
    /// are needed. Errors are sticky in practice: the caller drops the
    /// connection, exactly as the blocking model does.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        // lint:allow(no-panic): pending.len() >= 4 checked above, so the 4-byte try_into cannot fail
        let len = u32::from_le_bytes(pending[..4].try_into().unwrap()) as usize;
        // Validate the prefix as soon as it is readable — before waiting
        // for (or buffering) a payload that would bust the cap.
        check_frame_len(len)?;
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.pos += 4 + len;
        if self.is_idle() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }

    /// Pops the next complete request, `Ok(None)` while more bytes are
    /// needed.
    pub fn next_request(&mut self) -> io::Result<Option<Request>> {
        match self.next_frame()? {
            None => Ok(None),
            Some(payload) => decode_request_payload(&payload).map(Some),
        }
    }

    /// Pops the next complete response, `Ok(None)` while more bytes are
    /// needed.
    pub fn next_response(&mut self) -> io::Result<Option<Response>> {
        match self.next_frame()? {
            None => Ok(None),
            Some(payload) => decode_response_payload(&payload).map(Some),
        }
    }
}

/// Cursor over a frame payload.
struct Fields<'a> {
    bytes: &'a [u8],
}

impl<'a> Fields<'a> {
    fn u32(&mut self) -> io::Result<u32> {
        if self.bytes.len() < 4 {
            return Err(bad("truncated frame"));
        }
        // lint:allow(no-panic): bytes.len() >= 4 checked above, so the 4-byte try_into cannot fail
        let v = u32::from_le_bytes(self.bytes[..4].try_into().unwrap());
        self.bytes = &self.bytes[4..];
        Ok(v)
    }

    fn u64(&mut self) -> io::Result<u64> {
        if self.bytes.len() < 8 {
            return Err(bad("truncated frame"));
        }
        // lint:allow(no-panic): bytes.len() >= 8 checked above, so the 8-byte try_into cannot fail
        let v = u64::from_le_bytes(self.bytes[..8].try_into().unwrap());
        self.bytes = &self.bytes[8..];
        Ok(v)
    }

    fn finish(self) -> io::Result<()> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

/// Writes one request as a frame.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut p = Vec::new();
    match req {
        Request::Distance(s, t) => {
            p.push(op::DISTANCE);
            p.extend_from_slice(&s.to_le_bytes());
            p.extend_from_slice(&t.to_le_bytes());
        }
        Request::OneToMany { source, targets } => {
            p.push(op::ONE_TO_MANY);
            p.extend_from_slice(&source.to_le_bytes());
            p.extend_from_slice(&(targets.len() as u32).to_le_bytes());
            for t in targets {
                p.extend_from_slice(&t.to_le_bytes());
            }
        }
        Request::UpdateWeights(updates) => {
            p.push(op::UPDATE_WEIGHTS);
            p.extend_from_slice(&(updates.len() as u32).to_le_bytes());
            for up in updates {
                p.extend_from_slice(&up.u.to_le_bytes());
                p.extend_from_slice(&up.v.to_le_bytes());
                p.extend_from_slice(&up.new_weight.to_le_bytes());
            }
        }
        Request::Stats => p.push(op::STATS),
        Request::Metrics => p.push(op::METRICS),
        Request::Shutdown => p.push(op::SHUTDOWN),
    }
    write_frame(w, &p)
}

/// Reads one request; `Ok(None)` on clean EOF between frames.
pub fn read_request<R: Read>(r: &mut R) -> io::Result<Option<Request>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    decode_request_payload(&payload).map(Some)
}

/// Decodes one request frame payload — the grammar shared by the blocking
/// reader and the incremental [`FrameDecoder`].
fn decode_request_payload(payload: &[u8]) -> io::Result<Request> {
    // `check_frame_len` rejects empty frames upstream, but decode defensively
    // so this function is total over arbitrary payloads.
    let Some((opcode, rest)) = payload.split_first() else {
        return Err(bad("empty frame"));
    };
    let mut f = Fields { bytes: rest };
    let req = match *opcode {
        op::DISTANCE => {
            let (s, t) = (f.u32()?, f.u32()?);
            f.finish()?;
            Request::Distance(s, t)
        }
        op::ONE_TO_MANY => {
            let source = f.u32()?;
            let count = f.u32()? as usize;
            // Checked multiply: a huge claimed count must fail the length
            // comparison, not wrap it into passing on 32-bit hosts.
            if count.checked_mul(4) != Some(f.bytes.len()) {
                return Err(bad("one-to-many target count disagrees with frame length"));
            }
            let mut targets = Vec::with_capacity(count);
            for _ in 0..count {
                targets.push(f.u32()?);
            }
            f.finish()?;
            Request::OneToMany { source, targets }
        }
        op::UPDATE_WEIGHTS => {
            let count = f.u32()? as usize;
            // Checked multiply, as for one-to-many: a lying count must fail
            // the length comparison, never wrap past it.
            if count.checked_mul(12) != Some(f.bytes.len()) {
                return Err(bad("update count disagrees with frame length"));
            }
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                updates.push(WeightUpdate::new(f.u32()?, f.u32()?, f.u32()?));
            }
            f.finish()?;
            Request::UpdateWeights(updates)
        }
        op::STATS => {
            f.finish()?;
            Request::Stats
        }
        op::METRICS => {
            f.finish()?;
            Request::Metrics
        }
        op::SHUTDOWN => {
            f.finish()?;
            Request::Shutdown
        }
        other => return Err(bad(format!("unknown request opcode {other}"))),
    };
    Ok(req)
}

/// Writes one response as a frame.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut p = Vec::new();
    match resp {
        Response::Distance(d) => {
            p.push(op::DISTANCE);
            p.extend_from_slice(&d.to_le_bytes());
        }
        Response::Distances(ds) => return write_distances(w, ds),
        Response::Stats(s) => {
            p.push(op::STATS);
            p.extend_from_slice(&s.method_tag.to_le_bytes());
            p.extend_from_slice(&s.kernel_tag.to_le_bytes());
            p.extend_from_slice(&s.threads.to_le_bytes());
            for v in [
                s.num_vertices,
                s.index_bytes,
                s.mapped as u64,
                s.distance_queries,
                s.one_to_many_queries,
                s.one_to_many_targets,
                s.cache_hits,
                s.cache_misses,
                s.cache_len,
                s.cache_capacity,
                s.update_batches,
                s.epoch,
                s.connections_accepted,
                s.connections_reaped,
                s.panics_caught,
                s.overload_rejections,
                s.write_errors,
                s.distance_p50_ns,
                s.distance_p90_ns,
                s.distance_p99_ns,
                s.distance_p999_ns,
                s.distance_max_ns,
                s.one_to_many_p50_ns,
                s.one_to_many_p99_ns,
                s.update_p50_ns,
                s.update_p99_ns,
            ] {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(text) => {
            p.push(op::METRICS);
            p.extend_from_slice(text.as_bytes());
        }
        Response::Updated(o) => {
            p.push(op::UPDATE_WEIGHTS);
            p.extend_from_slice(&o.strategy_tag.to_le_bytes());
            for v in [o.applied, o.rejected, o.micros, o.epoch] {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::ShuttingDown => p.push(op::SHUTDOWN),
        Response::Overloaded(msg) => {
            p.push(op::OVERLOADED);
            p.extend_from_slice(msg.as_bytes());
        }
        Response::Error(msg) => {
            p.push(op::ERROR);
            p.extend_from_slice(msg.as_bytes());
        }
    }
    write_frame(w, &p)
}

/// Writes a [`Response::Distances`] frame directly from a slice — the
/// serving hot path encodes a reused batch buffer without first cloning it
/// into an owned `Response`.
pub fn write_distances<W: Write>(w: &mut W, ds: &[Distance]) -> io::Result<()> {
    let mut p = Vec::with_capacity(5 + ds.len() * 8);
    p.push(op::ONE_TO_MANY);
    p.extend_from_slice(&(ds.len() as u32).to_le_bytes());
    for d in ds {
        p.extend_from_slice(&d.to_le_bytes());
    }
    write_frame(w, &p)
}

/// Reads one response; `Ok(None)` on clean EOF between frames.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<Option<Response>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    decode_response_payload(&payload).map(Some)
}

/// Decodes one response frame payload — shared with the incremental
/// [`FrameDecoder`].
fn decode_response_payload(payload: &[u8]) -> io::Result<Response> {
    // As in `decode_request_payload`: total over arbitrary payloads.
    let Some((opcode, rest)) = payload.split_first() else {
        return Err(bad("empty frame"));
    };
    let mut f = Fields { bytes: rest };
    let resp = match *opcode {
        op::DISTANCE => {
            let d = f.u64()?;
            f.finish()?;
            Response::Distance(d)
        }
        op::ONE_TO_MANY => {
            let count = f.u32()? as usize;
            // Checked multiply, as on the request side.
            if count.checked_mul(8) != Some(f.bytes.len()) {
                return Err(bad("distance count disagrees with frame length"));
            }
            let mut ds = Vec::with_capacity(count);
            for _ in 0..count {
                ds.push(f.u64()?);
            }
            f.finish()?;
            Response::Distances(ds)
        }
        op::STATS => {
            let s = ServerStats {
                method_tag: f.u32()?,
                kernel_tag: f.u32()?,
                threads: f.u32()?,
                num_vertices: f.u64()?,
                index_bytes: f.u64()?,
                mapped: f.u64()? != 0,
                distance_queries: f.u64()?,
                one_to_many_queries: f.u64()?,
                one_to_many_targets: f.u64()?,
                cache_hits: f.u64()?,
                cache_misses: f.u64()?,
                cache_len: f.u64()?,
                cache_capacity: f.u64()?,
                update_batches: f.u64()?,
                epoch: f.u64()?,
                connections_accepted: f.u64()?,
                connections_reaped: f.u64()?,
                panics_caught: f.u64()?,
                overload_rejections: f.u64()?,
                write_errors: f.u64()?,
                distance_p50_ns: f.u64()?,
                distance_p90_ns: f.u64()?,
                distance_p99_ns: f.u64()?,
                distance_p999_ns: f.u64()?,
                distance_max_ns: f.u64()?,
                one_to_many_p50_ns: f.u64()?,
                one_to_many_p99_ns: f.u64()?,
                update_p50_ns: f.u64()?,
                update_p99_ns: f.u64()?,
            };
            f.finish()?;
            Response::Stats(s)
        }
        op::METRICS => Response::Metrics(
            String::from_utf8(f.bytes.to_vec()).map_err(|_| bad("metrics text not UTF-8"))?,
        ),
        op::UPDATE_WEIGHTS => {
            let o = UpdateOutcome {
                strategy_tag: f.u32()?,
                applied: f.u64()?,
                rejected: f.u64()?,
                micros: f.u64()?,
                epoch: f.u64()?,
            };
            f.finish()?;
            Response::Updated(o)
        }
        op::SHUTDOWN => {
            f.finish()?;
            Response::ShuttingDown
        }
        op::OVERLOADED => Response::Overloaded(
            String::from_utf8(f.bytes.to_vec()).map_err(|_| bad("overload message not UTF-8"))?,
        ),
        op::ERROR => Response::Error(
            String::from_utf8(f.bytes.to_vec()).map_err(|_| bad("error message not UTF-8"))?,
        ),
        other => return Err(bad(format!("unknown response opcode {other}"))),
    };
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_request(&mut r).unwrap(), Some(req));
        assert_eq!(read_request(&mut r).unwrap(), None, "clean EOF after");
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_response(&mut r).unwrap(), Some(resp));
        assert_eq!(read_response(&mut r).unwrap(), None);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Distance(3, 999_999));
        round_trip_request(Request::OneToMany {
            source: 7,
            targets: vec![],
        });
        round_trip_request(Request::OneToMany {
            source: 7,
            targets: (0..100).collect(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::UpdateWeights(vec![]));
        round_trip_request(Request::UpdateWeights(
            (0..50)
                .map(|i| WeightUpdate::new(i, i + 1, 10 + i))
                .collect(),
        ));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Distance(hc2l_graph::INFINITY));
        round_trip_response(Response::Distances(vec![1, 2, 3, u64::MAX]));
        round_trip_response(Response::Stats(ServerStats {
            method_tag: 3,
            kernel_tag: 2,
            num_vertices: 4096,
            index_bytes: 123_456,
            threads: 8,
            mapped: true,
            distance_queries: 10,
            one_to_many_queries: 2,
            one_to_many_targets: 64,
            cache_hits: 5,
            cache_misses: 5,
            cache_len: 5,
            cache_capacity: 100,
            update_batches: 2,
            epoch: 2,
            connections_accepted: 17,
            connections_reaped: 3,
            panics_caught: 1,
            overload_rejections: 4,
            write_errors: 2,
            distance_p50_ns: 80,
            distance_p90_ns: 120,
            distance_p99_ns: 900,
            distance_p999_ns: 12_000,
            distance_max_ns: 1_000_000,
            one_to_many_p50_ns: 4_000,
            one_to_many_p99_ns: 9_000,
            update_p50_ns: 2_000_000,
            update_p99_ns: 30_000_000,
        }));
        round_trip_response(Response::Metrics(String::new()));
        round_trip_response(Response::Metrics(
            "# TYPE hc2l_latency_p99_ns gauge\nhc2l_latency_p99_ns{op=\"distance\"} 42\n".into(),
        ));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error("no such vertex".into()));
        round_trip_response(Response::Overloaded(
            "an update batch is already in flight".into(),
        ));
        round_trip_response(Response::Updated(UpdateOutcome {
            strategy_tag: 2,
            applied: 100,
            rejected: 3,
            micros: 12_345,
            epoch: 7,
        }));
    }

    #[test]
    fn garbage_fails_typed_not_panicking() {
        // Unknown opcode.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[42, 0, 0]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Oversized frame length.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_request(&mut huge.as_slice()).is_err());
        // Zero-length frame.
        assert!(read_request(&mut [0u8; 4].as_slice()).is_err());
        // Truncated mid-frame (not at a boundary) is an error, not None.
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Distance(1, 2)).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Truncated *inside the length prefix* is an error too — only a
        // zero-byte EOF is a clean boundary.
        assert!(read_request(&mut [0x07u8, 0x00].as_slice()).is_err());
        // Count field lying about the payload size.
        let mut p = vec![2u8]; // ONE_TO_MANY
        p.extend_from_slice(&1u32.to_le_bytes()); // source
        p.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 targets
        p.extend_from_slice(&5u32.to_le_bytes()); // provides one
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    /// Feeds `buf` to a fresh incremental decoder in one piece and drains
    /// every complete request.
    fn incremental_requests(buf: &[u8]) -> io::Result<Vec<Request>> {
        let mut dec = FrameDecoder::new();
        dec.feed(buf);
        let mut out = Vec::new();
        while let Some(req) = dec.next_request()? {
            out.push(req);
        }
        assert!(dec.is_idle(), "whole frames must be fully consumed");
        Ok(out)
    }

    #[test]
    fn incremental_decoder_agrees_with_blocking_on_whole_frames() {
        let reqs = [
            Request::Distance(3, 999_999),
            Request::OneToMany {
                source: 7,
                targets: (0..100).collect(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for req in &reqs {
            write_request(&mut buf, req).unwrap();
        }
        assert_eq!(incremental_requests(&buf).unwrap(), reqs);
    }

    #[test]
    fn incremental_decoder_handles_every_split_offset() {
        // One pipelined stream of three frames, split across two feeds at
        // every possible offset: the decoder must produce the identical
        // request sequence regardless of where the fragment boundary falls.
        let reqs = [
            Request::Distance(1, 2),
            Request::OneToMany {
                source: 9,
                targets: vec![4, 5, 6],
            },
            Request::UpdateWeights(vec![
                WeightUpdate::new(0, 1, 42),
                WeightUpdate::new(5, 6, 7),
            ]),
            Request::Stats,
        ];
        let mut buf = Vec::new();
        for req in &reqs {
            write_request(&mut buf, req).unwrap();
        }
        for split in 0..=buf.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&buf[..split], &buf[split..]] {
                dec.feed(chunk);
                while let Some(req) = dec.next_request().unwrap() {
                    got.push(req);
                }
            }
            assert_eq!(got, reqs, "split at {split}");
            assert!(dec.is_idle());
        }
    }

    #[test]
    fn incremental_decoder_handles_byte_at_a_time_delivery() {
        let req = Request::OneToMany {
            source: 3,
            targets: (0..32).collect(),
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut dec = FrameDecoder::new();
        for (i, b) in buf.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.next_request().unwrap();
            if i + 1 < buf.len() {
                assert_eq!(
                    got,
                    None,
                    "frame complete after {} of {} bytes?",
                    i + 1,
                    buf.len()
                );
                assert!(!dec.is_idle(), "mid-frame must not read as a boundary");
            } else {
                assert_eq!(got, Some(req.clone()));
            }
        }
        assert!(dec.is_idle());
    }

    #[test]
    fn incremental_decoder_rejects_garbage_like_the_blocking_one() {
        // Unknown opcode.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[42, 0, 0]).unwrap();
        assert!(incremental_requests(&buf).is_err());
        // Zero-length frame.
        assert!(incremental_requests(&[0u8; 4]).is_err());
        // Count field lying about the payload size.
        let mut p = vec![2u8];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&1000u32.to_le_bytes());
        p.extend_from_slice(&5u32.to_le_bytes());
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        assert!(incremental_requests(&buf).is_err());
        // Update count lying about the payload size fails the same way on
        // both decoders.
        let mut p = vec![5u8]; // UPDATE_WEIGHTS
        p.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 updates
        p.extend_from_slice(&[0u8; 12]); // provides one
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        assert!(incremental_requests(&buf).is_err());
    }

    #[test]
    fn update_batch_bound_is_exact_and_over_cap_fails_before_buffering() {
        // A cap-sized batch still encodes within the frame cap...
        let updates = vec![WeightUpdate::new(1, 2, 3); MAX_UPDATE_BATCH];
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::UpdateWeights(updates.clone())).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 4 + 12 * MAX_UPDATE_BATCH);
        let mut r = buf.as_slice();
        assert_eq!(
            read_request(&mut r).unwrap(),
            Some(Request::UpdateWeights(updates))
        );
        // ...one more update is refused by the encoder itself...
        let updates = vec![WeightUpdate::new(1, 2, 3); MAX_UPDATE_BATCH + 1];
        let mut buf = Vec::new();
        let err = write_request(&mut buf, &Request::UpdateWeights(updates)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            buf.is_empty(),
            "nothing may hit the wire on a refused frame"
        );
        // ...and a crafted over-cap length prefix (what such a batch's frame
        // would have to claim) fails typed on the incremental decoder from
        // the prefix alone — before any payload is buffered.
        let over = (1 + 4 + 12 * (MAX_UPDATE_BATCH + 1)) as u32;
        let mut dec = FrameDecoder::new();
        dec.feed(&over.to_le_bytes());
        let err = dec.next_request().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(dec.has_complete_frame(), "malformed prefix must fail fast");
    }

    #[test]
    fn frame_of_exactly_max_frame_bytes_round_trips_on_both_decoders() {
        // An Error response whose message fills the payload to exactly the
        // cap: 1 opcode byte + (MAX_FRAME_BYTES - 1) message bytes.
        let msg = "x".repeat(MAX_FRAME_BYTES - 1);
        let resp = Response::Error(msg);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert_eq!(buf.len(), 4 + MAX_FRAME_BYTES);
        // Blocking decoder.
        let mut r = buf.as_slice();
        assert_eq!(read_response(&mut r).unwrap(), Some(resp.clone()));
        assert_eq!(read_response(&mut r).unwrap(), None);
        // Incremental decoder, fed in two fragments to cross the prefix.
        let mut dec = FrameDecoder::new();
        dec.feed(&buf[..7]);
        assert_eq!(dec.next_response().unwrap(), None);
        dec.feed(&buf[7..]);
        assert_eq!(dec.next_response().unwrap(), Some(resp));
        assert!(dec.is_idle());
    }

    #[test]
    fn frame_over_max_frame_bytes_fails_typed_on_both_decoders() {
        // The writer refuses to produce one...
        let msg = "x".repeat(MAX_FRAME_BYTES); // payload would be cap + 1
        let mut buf = Vec::new();
        let err = write_response(&mut buf, &Response::Error(msg)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            buf.is_empty(),
            "nothing may hit the wire on a refused frame"
        );
        // ...and both decoders reject a crafted over-cap prefix without
        // waiting for (or buffering) the payload.
        let prefix = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        let err = read_request(&mut prefix.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut dec = FrameDecoder::new();
        dec.feed(&prefix);
        let err = dec.next_request().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn one_to_many_bound_is_exact_against_both_encodings() {
        // (The arithmetic derivation is a compile-time assertion next to
        // the constant.) A cap-sized batch round-trips in both directions...
        let req = Request::OneToMany {
            source: 1,
            targets: vec![7; MAX_ONE_TO_MANY_TARGETS],
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert_eq!(read_request(&mut buf.as_slice()).unwrap(), Some(req));
        let ds = vec![42u64; MAX_ONE_TO_MANY_TARGETS];
        let mut buf = Vec::new();
        write_distances(&mut buf, &ds).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 4 + 8 * MAX_ONE_TO_MANY_TARGETS);
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_response().unwrap(), Some(Response::Distances(ds)));

        // ...while one more distance is refused by the encoder itself.
        let ds = vec![42u64; MAX_ONE_TO_MANY_TARGETS + 1];
        let mut buf = Vec::new();
        let err = write_distances(&mut buf, &ds).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn metrics_and_extended_stats_round_trip_through_frame_decoder() {
        // A pipelined response stream — extended Stats (every latency field
        // populated) followed by a Metrics document — through the
        // incremental decoder at every split offset, mirroring the request
        // split-matrix test above.
        let stats = Response::Stats(ServerStats {
            method_tag: 1,
            kernel_tag: 2,
            threads: 8,
            distance_queries: 1000,
            distance_p50_ns: 75,
            distance_p90_ns: 110,
            distance_p99_ns: 2_048,
            distance_p999_ns: 65_536,
            distance_max_ns: 3_000_000,
            one_to_many_p50_ns: 5_000,
            one_to_many_p99_ns: 11_111,
            update_p50_ns: 1,
            update_p99_ns: u64::MAX,
            ..Default::default()
        });
        let metrics = Response::Metrics(
            "# TYPE hc2l_latency_count gauge\nhc2l_latency_count{op=\"distance\",cache=\"hit\"} 998\n"
                .into(),
        );
        let mut buf = Vec::new();
        write_response(&mut buf, &stats).unwrap();
        write_response(&mut buf, &metrics).unwrap();
        for split in 0..=buf.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&buf[..split], &buf[split..]] {
                dec.feed(chunk);
                while let Some(resp) = dec.next_response().unwrap() {
                    got.push(resp);
                }
            }
            assert_eq!(
                got,
                vec![stats.clone(), metrics.clone()],
                "split at {split}"
            );
            assert!(dec.is_idle());
        }
        // The Metrics *request* is a bare opcode frame; a trailing byte is
        // malformed on both decoders.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[op::METRICS, 0]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        assert!(incremental_requests(&buf).is_err());
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = ServerStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
