//! The length-prefixed binary wire protocol between `hc2l-serve` and its
//! clients.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  --------------------------------------------
//!      0     4  payload length in bytes (u32, little-endian)
//!      4     1  opcode
//!      5     …  opcode-specific fields (little-endian integers)
//! ```
//!
//! Requests: `Distance(s, t)`, `OneToMany(s, targets…)`, `Stats`,
//! `Shutdown`. Responses mirror them, plus `Error(message)` for malformed
//! or out-of-range requests (the connection stays usable afterwards — a bad
//! query must not take down a worker).
//!
//! The codec is hand-rolled over `std::io::{Read, Write}` (the workspace
//! builds offline; the vendored serde is marker-only) and defensive in both
//! directions: frames are capped at [`MAX_FRAME_BYTES`] and every decode
//! error is a typed `io::Error`, so a garbage-spewing peer cannot make the
//! server allocate unboundedly or panic.

use std::io::{self, Read, Write};

use hc2l_graph::{Distance, Vertex};

/// Upper bound on one frame's payload (compare: a one-to-many request of
/// 1M targets is 4MB). Anything larger is rejected as malformed.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Largest one-to-many batch the server accepts: the *response* carries 8
/// bytes per distance (plus opcode and count), so batches beyond this would
/// produce a frame the peer must reject as oversized. The server answers
/// larger requests with [`Response::Error`]; clients chunk instead.
pub const MAX_ONE_TO_MANY_TARGETS: usize = (MAX_FRAME_BYTES - 16) / 8;

mod op {
    pub const DISTANCE: u8 = 1;
    pub const ONE_TO_MANY: u8 = 2;
    pub const STATS: u8 = 3;
    pub const SHUTDOWN: u8 = 4;
    pub const ERROR: u8 = 0xFF;
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact point-to-point distance.
    Distance(Vertex, Vertex),
    /// Batched distances from one source to many targets.
    OneToMany {
        /// Source vertex.
        source: Vertex,
        /// Target vertices, answered in order.
        targets: Vec<Vertex>,
    },
    /// Server counters and index identification.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Distance`].
    Distance(Distance),
    /// Answer to [`Request::OneToMany`], parallel to the request's targets.
    Distances(Vec<Distance>),
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// The request was malformed or out of range; the connection survives.
    Error(String),
}

/// Counters and identification reported by [`Request::Stats`] — which
/// backend is loaded travels as the container method tag, so the client
/// renders the proper display name via `Method::from_tag(..)` without
/// string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Container method tag of the served index (`Method::tag`).
    pub method_tag: u32,
    /// Vertices of the indexed graph.
    pub num_vertices: u64,
    /// Container file size in bytes.
    pub index_bytes: u64,
    /// Worker-thread cap of the serve loop.
    pub threads: u32,
    /// Whether the index is served from a file mapping.
    pub mapped: bool,
    /// Point-to-point queries answered.
    pub distance_queries: u64,
    /// One-to-many requests answered.
    pub one_to_many_queries: u64,
    /// Total targets across all one-to-many requests.
    pub one_to_many_targets: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache resident entries.
    pub cache_len: u64,
    /// Result-cache capacity (0 = disabled).
    pub cache_capacity: u64,
}

impl ServerStats {
    /// Cache hits over total lookups, 0.0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests). EOF anywhere *inside* a
/// frame — including partway through the length prefix — is an error: the
/// first prefix byte alone distinguishes "no next frame" from "truncated
/// frame".
fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(bad("EOF inside a frame length prefix")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 {
        return Err(bad("empty frame"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!("frame of {len} bytes exceeds the cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Cursor over a frame payload.
struct Fields<'a> {
    bytes: &'a [u8],
}

impl<'a> Fields<'a> {
    fn u32(&mut self) -> io::Result<u32> {
        if self.bytes.len() < 4 {
            return Err(bad("truncated frame"));
        }
        let v = u32::from_le_bytes(self.bytes[..4].try_into().unwrap());
        self.bytes = &self.bytes[4..];
        Ok(v)
    }

    fn u64(&mut self) -> io::Result<u64> {
        if self.bytes.len() < 8 {
            return Err(bad("truncated frame"));
        }
        let v = u64::from_le_bytes(self.bytes[..8].try_into().unwrap());
        self.bytes = &self.bytes[8..];
        Ok(v)
    }

    fn finish(self) -> io::Result<()> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

/// Writes one request as a frame.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut p = Vec::new();
    match req {
        Request::Distance(s, t) => {
            p.push(op::DISTANCE);
            p.extend_from_slice(&s.to_le_bytes());
            p.extend_from_slice(&t.to_le_bytes());
        }
        Request::OneToMany { source, targets } => {
            p.push(op::ONE_TO_MANY);
            p.extend_from_slice(&source.to_le_bytes());
            p.extend_from_slice(&(targets.len() as u32).to_le_bytes());
            for t in targets {
                p.extend_from_slice(&t.to_le_bytes());
            }
        }
        Request::Stats => p.push(op::STATS),
        Request::Shutdown => p.push(op::SHUTDOWN),
    }
    write_frame(w, &p)
}

/// Reads one request; `Ok(None)` on clean EOF between frames.
pub fn read_request<R: Read>(r: &mut R) -> io::Result<Option<Request>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let (opcode, rest) = payload.split_first().expect("frames are non-empty");
    let mut f = Fields { bytes: rest };
    let req = match *opcode {
        op::DISTANCE => {
            let (s, t) = (f.u32()?, f.u32()?);
            f.finish()?;
            Request::Distance(s, t)
        }
        op::ONE_TO_MANY => {
            let source = f.u32()?;
            let count = f.u32()? as usize;
            // Checked multiply: a huge claimed count must fail the length
            // comparison, not wrap it into passing on 32-bit hosts.
            if count.checked_mul(4) != Some(f.bytes.len()) {
                return Err(bad("one-to-many target count disagrees with frame length"));
            }
            let mut targets = Vec::with_capacity(count);
            for _ in 0..count {
                targets.push(f.u32()?);
            }
            f.finish()?;
            Request::OneToMany { source, targets }
        }
        op::STATS => {
            f.finish()?;
            Request::Stats
        }
        op::SHUTDOWN => {
            f.finish()?;
            Request::Shutdown
        }
        other => return Err(bad(format!("unknown request opcode {other}"))),
    };
    Ok(Some(req))
}

/// Writes one response as a frame.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut p = Vec::new();
    match resp {
        Response::Distance(d) => {
            p.push(op::DISTANCE);
            p.extend_from_slice(&d.to_le_bytes());
        }
        Response::Distances(ds) => return write_distances(w, ds),
        Response::Stats(s) => {
            p.push(op::STATS);
            p.extend_from_slice(&s.method_tag.to_le_bytes());
            p.extend_from_slice(&s.threads.to_le_bytes());
            for v in [
                s.num_vertices,
                s.index_bytes,
                s.mapped as u64,
                s.distance_queries,
                s.one_to_many_queries,
                s.one_to_many_targets,
                s.cache_hits,
                s.cache_misses,
                s.cache_len,
                s.cache_capacity,
            ] {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::ShuttingDown => p.push(op::SHUTDOWN),
        Response::Error(msg) => {
            p.push(op::ERROR);
            p.extend_from_slice(msg.as_bytes());
        }
    }
    write_frame(w, &p)
}

/// Writes a [`Response::Distances`] frame directly from a slice — the
/// serving hot path encodes a reused batch buffer without first cloning it
/// into an owned `Response`.
pub fn write_distances<W: Write>(w: &mut W, ds: &[Distance]) -> io::Result<()> {
    let mut p = Vec::with_capacity(5 + ds.len() * 8);
    p.push(op::ONE_TO_MANY);
    p.extend_from_slice(&(ds.len() as u32).to_le_bytes());
    for d in ds {
        p.extend_from_slice(&d.to_le_bytes());
    }
    write_frame(w, &p)
}

/// Reads one response; `Ok(None)` on clean EOF between frames.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<Option<Response>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let (opcode, rest) = payload.split_first().expect("frames are non-empty");
    let mut f = Fields { bytes: rest };
    let resp = match *opcode {
        op::DISTANCE => {
            let d = f.u64()?;
            f.finish()?;
            Response::Distance(d)
        }
        op::ONE_TO_MANY => {
            let count = f.u32()? as usize;
            // Checked multiply, as on the request side.
            if count.checked_mul(8) != Some(f.bytes.len()) {
                return Err(bad("distance count disagrees with frame length"));
            }
            let mut ds = Vec::with_capacity(count);
            for _ in 0..count {
                ds.push(f.u64()?);
            }
            f.finish()?;
            Response::Distances(ds)
        }
        op::STATS => {
            let s = ServerStats {
                method_tag: f.u32()?,
                threads: f.u32()?,
                num_vertices: f.u64()?,
                index_bytes: f.u64()?,
                mapped: f.u64()? != 0,
                distance_queries: f.u64()?,
                one_to_many_queries: f.u64()?,
                one_to_many_targets: f.u64()?,
                cache_hits: f.u64()?,
                cache_misses: f.u64()?,
                cache_len: f.u64()?,
                cache_capacity: f.u64()?,
            };
            f.finish()?;
            Response::Stats(s)
        }
        op::SHUTDOWN => {
            f.finish()?;
            Response::ShuttingDown
        }
        op::ERROR => Response::Error(
            String::from_utf8(f.bytes.to_vec()).map_err(|_| bad("error message not UTF-8"))?,
        ),
        other => return Err(bad(format!("unknown response opcode {other}"))),
    };
    Ok(Some(resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_request(&mut r).unwrap(), Some(req));
        assert_eq!(read_request(&mut r).unwrap(), None, "clean EOF after");
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_response(&mut r).unwrap(), Some(resp));
        assert_eq!(read_response(&mut r).unwrap(), None);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Distance(3, 999_999));
        round_trip_request(Request::OneToMany {
            source: 7,
            targets: vec![],
        });
        round_trip_request(Request::OneToMany {
            source: 7,
            targets: (0..100).collect(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Distance(hc2l_graph::INFINITY));
        round_trip_response(Response::Distances(vec![1, 2, 3, u64::MAX]));
        round_trip_response(Response::Stats(ServerStats {
            method_tag: 3,
            num_vertices: 4096,
            index_bytes: 123_456,
            threads: 8,
            mapped: true,
            distance_queries: 10,
            one_to_many_queries: 2,
            one_to_many_targets: 64,
            cache_hits: 5,
            cache_misses: 5,
            cache_len: 5,
            cache_capacity: 100,
        }));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error("no such vertex".into()));
    }

    #[test]
    fn garbage_fails_typed_not_panicking() {
        // Unknown opcode.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[42, 0, 0]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Oversized frame length.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_request(&mut huge.as_slice()).is_err());
        // Zero-length frame.
        assert!(read_request(&mut [0u8; 4].as_slice()).is_err());
        // Truncated mid-frame (not at a boundary) is an error, not None.
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Distance(1, 2)).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Truncated *inside the length prefix* is an error too — only a
        // zero-byte EOF is a clean boundary.
        assert!(read_request(&mut [0x07u8, 0x00].as_slice()).is_err());
        // Count field lying about the payload size.
        let mut p = vec![2u8]; // ONE_TO_MANY
        p.extend_from_slice(&1u32.to_le_bytes()); // source
        p.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 targets
        p.extend_from_slice(&5u32.to_le_bytes()); // provides one
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = ServerStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
