//! `hc2l-query` — client for the `hc2l-serve` daemon.
//!
//! ```text
//! hc2l-query [--addr HOST:PORT | --addr-file FILE [--wait SECS]]
//!            [--retries N] [--deadline SECS] MODE
//!
//! resilience (all server modes):
//!   --retries N             retry budget per request (default 3):
//!                           `Overloaded` responses always retry — the
//!                           server shed the request before executing it —
//!                           with exponential backoff + jitter; connection
//!                           failures retry (reconnecting) only for
//!                           idempotent requests (--distance, --stats,
//!                           replay setup). Updates and shutdown fail fast:
//!                           the client cannot know whether they executed.
//!   --deadline SECS         overall wall-clock bound; when it passes, the
//!                           client stops (no further retries) and exits
//!                           non-zero with honest partial progress
//!
//! modes:
//!   --distance S T          one point-to-point query, prints the distance
//!   --replay FILE           replay a workload file (hc2l_roadnet format:
//!                           `source target [expected]` lines); gates
//!                           exactness when expected distances are present
//!     --reps N              replay the file N times (default 1)
//!     --batch N             group pairs by source and send one-to-many
//!                           requests of up to N targets (default: point
//!                           queries)
//!     --clients N           replay over N concurrent connections, each
//!                           running the full workload (default 1); the
//!                           printed q/s aggregates all clients
//!     --idle N              additionally hold N idle connections open for
//!                           the duration of the replay (default 0) — the
//!                           connection-scaling shape: many held
//!                           connections, few active ones
//!   --update U V W          re-weight edge (U, V) to W on the live daemon
//!   --update-file FILE      send a whole weight-update batch (hc2l_roadnet
//!                           update format: `u v new_weight` lines); both
//!                           print the strategy that absorbed the batch
//!                           (ch-customize / hc2l-relabel / rebuild),
//!                           applied/rejected counts and the new epoch
//!   --stats                 print server counters as a labeled table
//!                           (identity, traffic, cache, latency percentiles,
//!                           fault counters)
//!   --metrics               scrape the Prometheus text-exposition document
//!                           (the `Metrics` frame) to stdout — pipe it to a
//!                           file or a pushgateway
//!   --shutdown              stop the daemon
//!
//! workload generation (no server needed):
//!   --gen-grid RxC --out FILE [--count N] [--seed S] [--grid-seed S]
//!                           write a workload over the seeded reference
//!                           grid, with exact expected distances (Dijkstra)
//!     --apply-updates FILE  apply a weight-update batch to the grid first,
//!                           so the expected distances gate a daemon that
//!                           has absorbed the same batch
//!   --gen-grid RxC --gen-updates N --out FILE [--seed S] [--grid-seed S]
//!                           write a weight-update batch over the grid's
//!                           edges instead (mostly increases — live traffic)
//! ```
//!
//! Replay prints `replayed N queries in S s (QPS q/s), M mismatches` plus
//! per-client and aggregate request-latency percentiles (each client times
//! every frame round trip into a shared-histogram snapshot; the aggregate is
//! the merge). An `[INCOMPLETE]` replay still reports percentiles — over the
//! queries that did complete. It exits non-zero if any answer disagrees with
//! the file's expected
//! distance, if the server errors, or if nothing was replayed — which is
//! what the CI serve-smoke step gates on. A connection reset mid-replay is
//! reported honestly: the client prints how far each stream got and exits
//! non-zero instead of silently retrying (re-sent queries would double-count
//! throughput and mask the fault).

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

use hc2l_graph::{dijkstra, Distance, INFINITY};
use hc2l_oracle::Method;
use hc2l_roadnet::{random_pairs, read_workload_file, seeded_grid, write_workload_file, QueryPair};
use hc2l_serve::{read_response, write_request, Request, Response};

#[derive(Default)]
struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    wait_secs: u64,
    distance: Option<(u32, u32)>,
    replay: Option<String>,
    reps: usize,
    batch: usize,
    clients: usize,
    idle: usize,
    stats: bool,
    metrics: bool,
    shutdown: bool,
    update: Option<hc2l_oracle::WeightUpdate>,
    update_file: Option<String>,
    gen_grid: Option<(usize, usize)>,
    gen_updates: usize,
    apply_updates: Option<String>,
    out: Option<String>,
    count: usize,
    seed: u64,
    grid_seed: u64,
    retries: usize,
    deadline_secs: u64,
}

fn usage() -> ! {
    eprintln!("see the module documentation at the top of query.rs for usage");
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        wait_secs: 30,
        reps: 1,
        clients: 1,
        count: 500,
        seed: 0xBEEF,
        grid_seed: 0xA11CE,
        retries: 3,
        ..Args::default()
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let read_value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            exit(2);
        })
    };
    macro_rules! parse {
        ($i:expr, $what:literal) => {
            read_value($i).parse().unwrap_or_else(|_| {
                eprintln!(concat!("invalid ", $what));
                exit(2);
            })
        };
    }
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = Some(read_value(&mut i)),
            "--addr-file" => args.addr_file = Some(read_value(&mut i)),
            "--wait" => args.wait_secs = parse!(&mut i, "--wait"),
            "--distance" => {
                let s = parse!(&mut i, "--distance source");
                let t = parse!(&mut i, "--distance target");
                args.distance = Some((s, t));
            }
            "--replay" => args.replay = Some(read_value(&mut i)),
            "--reps" => args.reps = parse!(&mut i, "--reps"),
            "--batch" => args.batch = parse!(&mut i, "--batch"),
            "--clients" => args.clients = parse!(&mut i, "--clients"),
            "--idle" => args.idle = parse!(&mut i, "--idle"),
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--shutdown" => args.shutdown = true,
            "--update" => {
                let u = parse!(&mut i, "--update endpoint");
                let v = parse!(&mut i, "--update endpoint");
                let w = parse!(&mut i, "--update weight");
                args.update = Some(hc2l_oracle::WeightUpdate::new(u, v, w));
            }
            "--update-file" => args.update_file = Some(read_value(&mut i)),
            "--gen-updates" => args.gen_updates = parse!(&mut i, "--gen-updates"),
            "--apply-updates" => args.apply_updates = Some(read_value(&mut i)),
            "--gen-grid" => {
                let v = read_value(&mut i);
                let (r, c) = v.split_once('x').unwrap_or_else(|| {
                    eprintln!("--gen-grid expects ROWSxCOLS, e.g. 16x16");
                    exit(2);
                });
                let rows = r.parse().unwrap_or(0);
                let cols = c.parse().unwrap_or(0);
                if rows == 0 || cols == 0 {
                    eprintln!("--gen-grid expects ROWSxCOLS, e.g. 16x16");
                    exit(2);
                }
                args.gen_grid = Some((rows, cols));
            }
            "--out" => args.out = Some(read_value(&mut i)),
            "--count" => args.count = parse!(&mut i, "--count"),
            "--seed" => args.seed = parse!(&mut i, "--seed"),
            "--grid-seed" => args.grid_seed = parse!(&mut i, "--grid-seed"),
            "--retries" => args.retries = parse!(&mut i, "--retries"),
            "--deadline" => args.deadline_secs = parse!(&mut i, "--deadline"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 1;
    }
    args
}

/// A connected session: framed requests over one TCP stream.
struct Session {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Session {
    fn try_connect(addr: &str) -> std::io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Session {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn ask(&mut self, req: &Request) -> std::io::Result<Response> {
        write_request(&mut self.writer, req)?;
        match read_response(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up",
            )),
        }
    }
}

/// Client-side resilience: a bounded retry budget with exponential backoff
/// and jitter, under an optional overall wall-clock `--deadline`.
struct RetryPolicy {
    retries: usize,
    deadline: Option<Instant>,
    /// xorshift64* state for backoff jitter (no rand dependency in bins).
    rng: u64,
}

impl RetryPolicy {
    fn new(args: &Args) -> RetryPolicy {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        RetryPolicy {
            retries: args.retries,
            deadline: (args.deadline_secs > 0)
                .then(|| Instant::now() + Duration::from_secs(args.deadline_secs)),
            rng: (std::process::id() as u64) << 32 | nanos | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Whether the overall `--deadline` has passed.
    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Sleeps before retry `attempt`: a uniform draw from [base/2, base]
    /// where base = 50ms * 2^attempt (capped at 3.2s) — the jitter spreads
    /// out clients that were all shed by the same overload spike. The sleep
    /// never overshoots the deadline; returns `false` when the deadline has
    /// already passed (do not retry).
    fn pause(&mut self, attempt: u32) -> bool {
        if self.past_deadline() {
            return false;
        }
        let base = 50u64 << attempt.min(6);
        let mut d = Duration::from_millis(base / 2 + self.next_rand() % (base / 2 + 1));
        if let Some(dl) = self.deadline {
            let left = dl.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            d = d.min(left);
        }
        std::thread::sleep(d);
        true
    }
}

/// Sends `req`, retrying within the policy budget: `Overloaded` responses
/// always retry (the server shed the request *before* executing it, so a
/// verbatim resend is safe); connection failures reconnect and retry only
/// for idempotent requests. Updates and shutdown fail fast on a connection
/// error — the client cannot know whether the server executed them.
/// Retries exhausted (or deadline passed) exits non-zero.
fn ask_resilient(
    addr: &str,
    policy: &mut RetryPolicy,
    session: &mut Option<Session>,
    req: &Request,
) -> Response {
    let idempotent = matches!(
        req,
        Request::Distance(..) | Request::OneToMany { .. } | Request::Stats | Request::Metrics
    );
    let mut attempt = 0u32;
    loop {
        if policy.past_deadline() {
            eprintln!("--deadline exceeded before the request completed");
            exit(1);
        }
        if session.is_none() {
            match Session::try_connect(addr) {
                Ok(s) => *session = Some(s),
                Err(e) => {
                    if attempt as usize >= policy.retries || !policy.pause(attempt) {
                        eprintln!(
                            "cannot connect to {addr} after {} attempt(s): {e}",
                            attempt + 1
                        );
                        exit(1);
                    }
                    attempt += 1;
                    continue;
                }
            }
        }
        match session.as_mut().expect("connected above").ask(req) {
            Ok(Response::Overloaded(msg)) => {
                if attempt as usize >= policy.retries || !policy.pause(attempt) {
                    eprintln!("server overloaded, retries exhausted: {msg}");
                    exit(1);
                }
                eprintln!("server overloaded ({msg}); backing off");
                attempt += 1;
            }
            Ok(resp) => return resp,
            Err(e) => {
                *session = None; // stream state unknown: reconnect if we retry
                if !idempotent {
                    eprintln!(
                        "connection failed mid-request: {e}; not retrying — the server \
                         may already have executed it"
                    );
                    exit(1);
                }
                if attempt as usize >= policy.retries || !policy.pause(attempt) {
                    eprintln!("request failed after {} attempt(s): {e}", attempt + 1);
                    exit(1);
                }
                attempt += 1;
            }
        }
    }
}

/// `--addr` verbatim, or poll `--addr-file` until the daemon writes it.
fn resolve_addr(args: &Args) -> String {
    if let Some(addr) = &args.addr {
        return addr.clone();
    }
    let Some(file) = &args.addr_file else {
        eprintln!("--addr HOST:PORT or --addr-file FILE is required");
        exit(2);
    };
    let deadline = Instant::now() + Duration::from_secs(args.wait_secs);
    loop {
        if let Ok(text) = std::fs::read_to_string(file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("timed out waiting for {file}");
            exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn generate_workload(args: &Args) {
    let (rows, cols) = args.gen_grid.expect("gen mode");
    let Some(out) = &args.out else {
        eprintln!("--gen-grid needs --out FILE");
        exit(2);
    };
    let mut g = seeded_grid(rows, cols, args.grid_seed);
    if args.gen_updates > 0 {
        let updates = hc2l_roadnet::random_weight_updates(&g, args.gen_updates, args.seed);
        hc2l_roadnet::write_update_file(std::path::Path::new(out), &updates).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        });
        eprintln!(
            "wrote {} weight updates over the {rows}x{cols} grid (seed {:#x}) to {out}",
            updates.len(),
            args.grid_seed
        );
        return;
    }
    if let Some(file) = &args.apply_updates {
        let updates =
            hc2l_roadnet::read_update_file(std::path::Path::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot read updates {file}: {e}");
                exit(1);
            });
        let (applied, rejected) = hc2l_oracle::apply_batch(&mut g, &updates);
        eprintln!("applied {applied} updates from {file} to the grid ({rejected} rejected)");
    }
    let pairs = random_pairs(g.num_vertices(), args.count.max(1), args.seed);
    // Exact expected distances, one Dijkstra per distinct source.
    let mut by_source: std::collections::HashMap<u32, Vec<Distance>> =
        std::collections::HashMap::new();
    let expected: Vec<Distance> = pairs
        .iter()
        .map(|p| {
            by_source
                .entry(p.source)
                .or_insert_with(|| dijkstra(&g, p.source))[p.target as usize]
        })
        .collect();
    write_workload_file(std::path::Path::new(out), &pairs, Some(&expected)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!(
        "wrote {} queries over the {rows}x{cols} grid (seed {:#x}) to {out}",
        pairs.len(),
        args.grid_seed
    );
}

/// Groups consecutive same-source pairs into one-to-many batches of at most
/// `batch` targets (preserving replay order within a group).
fn batch_plan(pairs: &[QueryPair], batch: usize) -> Vec<(u32, Vec<u32>)> {
    let mut plan: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut by_source: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    for p in pairs {
        let entry = by_source.entry(p.source).or_insert_with(|| {
            order.push(p.source);
            Vec::new()
        });
        entry.push(p.target);
    }
    for s in order {
        let targets = &by_source[&s];
        for chunk in targets.chunks(batch.max(1)) {
            plan.push((s, chunk.to_vec()));
        }
    }
    plan
}

/// One replay client's outcome. When the replay stopped early, `queries`
/// is the honest partial progress and `aborted` names the reason.
struct ClientRun {
    queries: u64,
    mismatches: u64,
    aborted: Option<String>,
    /// Request-latency snapshot (one sample per completed frame round trip;
    /// a batched request is one sample). Populated even for an aborted run.
    latency: hc2l_obs::Snapshot,
}

/// Records one answered query, gating it against the expected distance.
/// `reported` caps mismatch diagnostics across all concurrent clients.
fn check_answer(
    run: &mut ClientRun,
    expected: &std::collections::HashMap<(u32, u32), Distance>,
    reported: &std::sync::atomic::AtomicU64,
    s: u32,
    t: u32,
    got: Distance,
) {
    run.queries += 1;
    if let Some(&want) = expected.get(&(s, t)) {
        if got != want {
            if reported.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 10 {
                let render = |d: Distance| {
                    if d >= INFINITY {
                        "inf".to_string()
                    } else {
                        d.to_string()
                    }
                };
                eprintln!(
                    "MISMATCH ({s}, {t}): server says {}, workload expects {}",
                    render(got),
                    render(want)
                );
            }
            run.mismatches += 1;
        }
    }
}

/// Replays the plan once per rep over one connection. `Overloaded`
/// responses retry with backoff within the policy budget; a connection
/// failure mid-replay stops this client with honest partial progress —
/// resending queries over a fresh connection would double-count throughput
/// and mask the fault, so replay never silently reconnects.
fn run_replay_client(
    addr: &str,
    args: &Args,
    client_id: usize,
    plan: &[Request],
    expected: &std::collections::HashMap<(u32, u32), Distance>,
    reported: &std::sync::atomic::AtomicU64,
) -> ClientRun {
    let mut policy = RetryPolicy::new(args);
    // Decorrelate the jitter streams of concurrent clients.
    policy.rng ^= (client_id as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
    let mut run = ClientRun {
        queries: 0,
        mismatches: 0,
        aborted: None,
        latency: hc2l_obs::Snapshot::default(),
    };
    // Per-frame round-trip latency: the same histogram the server records
    // into, client-side. Only completed asks are timed — overload backoffs
    // and reconnect pauses are resilience, not latency.
    let hist = hc2l_obs::Histogram::new();
    let mut session = match Session::try_connect(addr) {
        Ok(s) => s,
        Err(e) => {
            run.aborted = Some(format!("cannot connect to {addr}: {e}"));
            return run;
        }
    };
    'replay: for _ in 0..args.reps.max(1) {
        for req in plan {
            if policy.past_deadline() {
                run.aborted = Some("--deadline exceeded".to_string());
                break 'replay;
            }
            let mut attempt = 0u32;
            let resp = loop {
                let t0 = hc2l_obs::clock::now();
                match session.ask(req) {
                    Ok(Response::Overloaded(msg)) => {
                        if attempt as usize >= policy.retries || !policy.pause(attempt) {
                            run.aborted =
                                Some(format!("server overloaded, retries exhausted: {msg}"));
                            break 'replay;
                        }
                        attempt += 1;
                    }
                    Ok(resp) => {
                        hist.record(hc2l_obs::clock::ns_since(t0));
                        break resp;
                    }
                    Err(e) => {
                        run.aborted = Some(format!("connection failed mid-replay: {e}"));
                        break 'replay;
                    }
                }
            };
            match (req, resp) {
                (Request::Distance(s, t), Response::Distance(d)) => {
                    check_answer(&mut run, expected, reported, *s, *t, d)
                }
                (Request::OneToMany { source, targets }, Response::Distances(ds))
                    if ds.len() == targets.len() =>
                {
                    for (&t, d) in targets.iter().zip(ds) {
                        check_answer(&mut run, expected, reported, *source, t, d);
                    }
                }
                (_, Response::Error(msg)) => {
                    run.aborted = Some(format!("server error: {msg}"));
                    break 'replay;
                }
                (_, other) => {
                    run.aborted = Some(format!("unexpected response {other:?}"));
                    break 'replay;
                }
            }
        }
    }
    run.latency = hist.snapshot();
    run
}

fn replay(args: &Args) {
    let file = args.replay.as_deref().expect("replay mode");
    let w = read_workload_file(std::path::Path::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read workload {file}: {e}");
        exit(1);
    });
    if w.pairs.is_empty() {
        eprintln!("workload {file} holds no queries");
        exit(1);
    }
    let expected: std::collections::HashMap<(u32, u32), Distance> = if w.has_expected() {
        w.pairs
            .iter()
            .zip(&w.expected)
            .map(|(p, &d)| ((p.source, p.target), d))
            .collect()
    } else {
        Default::default()
    };

    // The grouping is pure in (pairs, batch): build the request values
    // once, outside the timed section, so the printed q/s measures the
    // server, not plan construction.
    let plan: Vec<Request> = if args.batch > 0 {
        batch_plan(&w.pairs, args.batch)
            .into_iter()
            .map(|(source, targets)| Request::OneToMany { source, targets })
            .collect()
    } else {
        w.pairs
            .iter()
            .map(|p| Request::Distance(p.source, p.target))
            .collect()
    };

    // Idle connections are held open for the whole replay — with
    // `--clients` this reproduces the deployed shape: a large connection
    // table, a few active members.
    let idle: Vec<TcpStream> = (0..args.idle)
        .map(|_| {
            let addr = resolve_addr(args);
            TcpStream::connect(&addr).unwrap_or_else(|e| {
                eprintln!("cannot open idle connection to {addr}: {e}");
                exit(1);
            })
        })
        .collect();

    let clients = args.clients.max(1);
    let reps = args.reps.max(1);
    // How many answers one client produces when nothing goes wrong — the
    // yardstick partial progress is reported against.
    let planned: u64 = plan
        .iter()
        .map(|r| match r {
            Request::OneToMany { targets, .. } => targets.len() as u64,
            _ => 1,
        })
        .sum::<u64>()
        * reps as u64;
    let addr = resolve_addr(args);
    let reported = std::sync::atomic::AtomicU64::new(0);
    // Pay the one-off TSC calibration before the timed section.
    hc2l_obs::clock::calibrate();
    let start = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let (addr, plan, expected, reported) = (&addr, &plan, &expected, &reported);
                scope.spawn(move || run_replay_client(addr, args, id, plan, expected, reported))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay client panicked"))
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    drop(idle);
    let queries: u64 = runs.iter().map(|r| r.queries).sum();
    let mismatches: u64 = runs.iter().map(|r| r.mismatches).sum();
    let mut incomplete = false;
    for (id, run) in runs.iter().enumerate() {
        if let Some(reason) = &run.aborted {
            incomplete = true;
            eprintln!(
                "client {id}: stopped early after {} of {planned} queries: {reason}",
                run.queries
            );
        }
    }
    let qps = if seconds > 0.0 {
        queries as f64 / seconds
    } else {
        0.0
    };
    // Request-latency percentiles: one line per client, then the merged
    // aggregate. An aborted client still reports — over the requests that
    // completed before the fault.
    let mut aggregate = hc2l_obs::Snapshot::default();
    for (id, run) in runs.iter().enumerate() {
        aggregate.merge(&run.latency);
        if clients > 1 {
            println!(
                "client {id} latency: {}{}",
                run.latency.summary(),
                if run.aborted.is_some() {
                    " [INCOMPLETE]"
                } else {
                    ""
                }
            );
        }
    }
    println!("request latency: {}", aggregate.summary());
    println!(
        "replayed {queries} queries in {seconds:.3} s ({qps:.0} q/s) across {clients} \
         client{} (+{} idle), {mismatches} mismatches{}{}",
        if clients == 1 { "" } else { "s" },
        args.idle,
        if expected.is_empty() {
            " (no expected distances in file)"
        } else {
            ""
        },
        if incomplete {
            " [INCOMPLETE: partial progress only]"
        } else {
            ""
        }
    );
    if incomplete || mismatches > 0 || queries == 0 || qps <= 0.0 {
        exit(1);
    }
}

/// Sends one `UpdateWeights` batch and prints the outcome — which strategy
/// absorbed it, how much of it stuck, and the generation now being served.
/// `Overloaded` (another batch already absorbing) retries with backoff; a
/// connection failure fails fast (the batch may or may not have applied).
fn send_updates(
    addr: &str,
    policy: &mut RetryPolicy,
    session: &mut Option<Session>,
    updates: Vec<hc2l_oracle::WeightUpdate>,
) {
    let sent = updates.len();
    match ask_resilient(addr, policy, session, &Request::UpdateWeights(updates)) {
        Response::Updated(o) => {
            let strategy = hc2l_oracle::UpdateStrategy::from_tag(o.strategy_tag)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("unknown tag {}", o.strategy_tag));
            println!(
                "updated {} of {sent} edges via {strategy} in {} us ({} rejected), \
                 now serving epoch {}",
                o.applied, o.micros, o.rejected, o.epoch
            );
            if o.applied == 0 && sent > 0 {
                eprintln!("no update named an existing edge");
                exit(1);
            }
        }
        Response::Error(msg) => {
            eprintln!("server error: {msg}");
            exit(1);
        }
        other => {
            eprintln!("unexpected response {other:?}");
            exit(1);
        }
    }
}

/// Fetches the server counters (retrying transparently — Stats is
/// idempotent).
fn fetch_stats(
    addr: &str,
    policy: &mut RetryPolicy,
    session: &mut Option<Session>,
) -> hc2l_serve::ServerStats {
    match ask_resilient(addr, policy, session, &Request::Stats) {
        Response::Stats(s) => s,
        other => {
            eprintln!("unexpected response to Stats: {other:?}");
            exit(1);
        }
    }
}

/// Renders the server counters as a labeled table grouped into sections
/// (index identity, traffic, cache, latency percentiles, fault counters).
/// Separate from printing so the layout has a unit test.
fn format_stats(s: &hc2l_serve::ServerStats) -> String {
    let method = Method::from_tag(s.method_tag)
        .map(|m| m.to_string())
        .unwrap_or_else(|| format!("unknown tag {}", s.method_tag));
    let kernel = hc2l_graph::KernelKind::from_tag(s.kernel_tag)
        .map(|k| k.name().to_string())
        .unwrap_or_else(|| format!("unknown tag {}", s.kernel_tag));
    let mut out = String::new();
    let mut section = |title: &str, rows: &[(&str, String)]| {
        out.push_str(title);
        out.push('\n');
        for (k, v) in rows {
            out.push_str(&format!("  {k:<22} {v}\n"));
        }
    };
    section(
        "index",
        &[
            ("method", method),
            ("kernel", kernel),
            ("num_vertices", s.num_vertices.to_string()),
            ("index_bytes", s.index_bytes.to_string()),
            ("mapped", s.mapped.to_string()),
            ("epoch", s.epoch.to_string()),
        ],
    );
    section(
        "traffic",
        &[
            ("threads", s.threads.to_string()),
            ("distance_queries", s.distance_queries.to_string()),
            ("one_to_many_queries", s.one_to_many_queries.to_string()),
            ("one_to_many_targets", s.one_to_many_targets.to_string()),
            ("update_batches", s.update_batches.to_string()),
        ],
    );
    section(
        "cache",
        &[
            ("cache_hits", s.cache_hits.to_string()),
            ("cache_misses", s.cache_misses.to_string()),
            ("cache_hit_rate", format!("{:.4}", s.cache_hit_rate())),
            ("cache_len", s.cache_len.to_string()),
            ("cache_capacity", s.cache_capacity.to_string()),
        ],
    );
    let ns = hc2l_obs::histogram::fmt_ns;
    section(
        "latency",
        &[
            ("distance_p50", ns(s.distance_p50_ns)),
            ("distance_p90", ns(s.distance_p90_ns)),
            ("distance_p99", ns(s.distance_p99_ns)),
            ("distance_p99.9", ns(s.distance_p999_ns)),
            ("distance_max", ns(s.distance_max_ns)),
            ("one_to_many_p50", ns(s.one_to_many_p50_ns)),
            ("one_to_many_p99", ns(s.one_to_many_p99_ns)),
            ("update_p50", ns(s.update_p50_ns)),
            ("update_p99", ns(s.update_p99_ns)),
        ],
    );
    section(
        "faults",
        &[
            ("connections_accepted", s.connections_accepted.to_string()),
            ("connections_reaped", s.connections_reaped.to_string()),
            ("panics_caught", s.panics_caught.to_string()),
            ("overload_rejections", s.overload_rejections.to_string()),
            ("write_errors", s.write_errors.to_string()),
        ],
    );
    out
}

fn print_stats(s: &hc2l_serve::ServerStats) {
    print!("{}", format_stats(s));
}

fn main() {
    let args = parse_args();
    if args.gen_grid.is_some() {
        generate_workload(&args);
        return;
    }
    let modes = [
        args.distance.is_some(),
        args.replay.is_some(),
        args.stats,
        args.metrics,
        args.shutdown,
        args.update.is_some(),
        args.update_file.is_some(),
    ];
    if modes.iter().filter(|&&m| m).count() != 1 {
        eprintln!(
            "pick exactly one mode: --distance, --replay, --stats, --metrics, \
             --shutdown, --update or --update-file"
        );
        exit(2);
    }
    if args.replay.is_some() {
        replay(&args);
        return;
    }
    let addr = resolve_addr(&args);
    let mut policy = RetryPolicy::new(&args);
    let mut session: Option<Session> = None;
    if let Some((s, t)) = args.distance {
        match ask_resilient(&addr, &mut policy, &mut session, &Request::Distance(s, t)) {
            Response::Distance(d) if d >= INFINITY => println!("inf"),
            Response::Distance(d) => println!("{d}"),
            Response::Error(msg) => {
                eprintln!("server error: {msg}");
                exit(1);
            }
            other => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
        }
    } else if let Some(update) = args.update {
        send_updates(&addr, &mut policy, &mut session, vec![update]);
    } else if let Some(file) = &args.update_file {
        let updates =
            hc2l_roadnet::read_update_file(std::path::Path::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot read updates {file}: {e}");
                exit(1);
            });
        // Validate the whole batch client-side before any byte goes out:
        // a malformed batch (empty, out-of-range endpoint, duplicate edge)
        // must fail typed with no partial apply visible to queries.
        let n = fetch_stats(&addr, &mut policy, &mut session).num_vertices;
        if let Err(e) = hc2l_roadnet::validate_update_batch(&updates, n as usize) {
            eprintln!("invalid update batch in {file}: {e}; nothing was sent (no partial apply)");
            exit(1);
        }
        send_updates(&addr, &mut policy, &mut session, updates);
    } else if args.stats {
        let s = fetch_stats(&addr, &mut policy, &mut session);
        print_stats(&s);
    } else if args.metrics {
        match ask_resilient(&addr, &mut policy, &mut session, &Request::Metrics) {
            Response::Metrics(doc) => print!("{doc}"),
            other => {
                eprintln!("unexpected response to Metrics: {other:?}");
                exit(1);
            }
        }
    } else if args.shutdown {
        match ask_resilient(&addr, &mut policy, &mut session, &Request::Shutdown) {
            Response::ShuttingDown => eprintln!("server acknowledged shutdown"),
            other => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_table_has_every_section_and_field() {
        let s = hc2l_serve::ServerStats {
            method_tag: Method::Hc2l.tag(),
            kernel_tag: hc2l_graph::KernelKind::Avx2.tag(),
            num_vertices: 1_000_000,
            index_bytes: 123_456_789,
            threads: 8,
            mapped: true,
            distance_queries: 42,
            one_to_many_queries: 3,
            one_to_many_targets: 300,
            cache_hits: 30,
            cache_misses: 12,
            cache_len: 12,
            cache_capacity: 65_536,
            update_batches: 2,
            epoch: 2,
            connections_accepted: 5,
            connections_reaped: 1,
            panics_caught: 0,
            overload_rejections: 7,
            write_errors: 0,
            distance_p50_ns: 85,
            distance_p90_ns: 120,
            distance_p99_ns: 950,
            distance_p999_ns: 12_300,
            distance_max_ns: 4_560_000,
            one_to_many_p50_ns: 5_000,
            one_to_many_p99_ns: 11_000,
            update_p50_ns: 2_000_000,
            update_p99_ns: 30_000_000,
        };
        let table = format_stats(&s);
        for header in ["index\n", "traffic\n", "cache\n", "latency\n", "faults\n"] {
            assert!(table.contains(header), "missing section {header:?}");
        }
        // Identity rows carry the kernel (PR 8) and method names.
        assert!(table.contains("  method                 HC2L\n"), "{table}");
        assert!(table.contains("  kernel                 avx2\n"), "{table}");
        // Latency rows render with adaptive units.
        assert!(table.contains("  distance_p50           85ns\n"), "{table}");
        assert!(
            table.contains("  distance_p99.9         12.3µs\n"),
            "{table}"
        );
        assert!(
            table.contains("  distance_max           4.56ms\n"),
            "{table}"
        );
        assert!(
            table.contains("  update_p99             30.00ms\n"),
            "{table}"
        );
        // Fault counters (PR 7) are all present.
        assert!(table.contains("  connections_reaped     1\n"), "{table}");
        assert!(table.contains("  panics_caught          0\n"), "{table}");
        assert!(table.contains("  overload_rejections    7\n"), "{table}");
        assert!(table.contains("  write_errors           0\n"), "{table}");
        assert!(
            table.contains("  cache_hit_rate         0.7143\n"),
            "{table}"
        );
        // Every non-header line is two-space indented and key-aligned.
        for line in table.lines() {
            assert!(
                !line.starts_with("  ") || line.len() > 25,
                "misaligned row: {line:?}"
            );
        }
    }
}
