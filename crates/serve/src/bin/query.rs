//! `hc2l-query` — client for the `hc2l-serve` daemon.
//!
//! ```text
//! hc2l-query [--addr HOST:PORT | --addr-file FILE [--wait SECS]] MODE
//!
//! modes:
//!   --distance S T          one point-to-point query, prints the distance
//!   --replay FILE           replay a workload file (hc2l_roadnet format:
//!                           `source target [expected]` lines); gates
//!                           exactness when expected distances are present
//!     --reps N              replay the file N times (default 1)
//!     --batch N             group pairs by source and send one-to-many
//!                           requests of up to N targets (default: point
//!                           queries)
//!   --stats                 print server counters
//!   --shutdown              stop the daemon
//!
//! workload generation (no server needed):
//!   --gen-grid RxC --out FILE [--count N] [--seed S] [--grid-seed S]
//!                           write a workload over the seeded reference
//!                           grid, with exact expected distances (Dijkstra)
//! ```
//!
//! Replay prints `replayed N queries in S s (QPS q/s), M mismatches` and
//! exits non-zero if any answer disagrees with the file's expected
//! distance, if the server errors, or if nothing was replayed — which is
//! what the CI serve-smoke step gates on.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

use hc2l_graph::{dijkstra, Distance, INFINITY};
use hc2l_oracle::Method;
use hc2l_roadnet::{random_pairs, read_workload_file, seeded_grid, write_workload_file, QueryPair};
use hc2l_serve::{read_response, write_request, Request, Response};

#[derive(Default)]
struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    wait_secs: u64,
    distance: Option<(u32, u32)>,
    replay: Option<String>,
    reps: usize,
    batch: usize,
    stats: bool,
    shutdown: bool,
    gen_grid: Option<(usize, usize)>,
    out: Option<String>,
    count: usize,
    seed: u64,
    grid_seed: u64,
}

fn usage() -> ! {
    eprintln!("see the module documentation at the top of query.rs for usage");
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        wait_secs: 30,
        reps: 1,
        count: 500,
        seed: 0xBEEF,
        grid_seed: 0xA11CE,
        ..Args::default()
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let read_value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            exit(2);
        })
    };
    macro_rules! parse {
        ($i:expr, $what:literal) => {
            read_value($i).parse().unwrap_or_else(|_| {
                eprintln!(concat!("invalid ", $what));
                exit(2);
            })
        };
    }
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = Some(read_value(&mut i)),
            "--addr-file" => args.addr_file = Some(read_value(&mut i)),
            "--wait" => args.wait_secs = parse!(&mut i, "--wait"),
            "--distance" => {
                let s = parse!(&mut i, "--distance source");
                let t = parse!(&mut i, "--distance target");
                args.distance = Some((s, t));
            }
            "--replay" => args.replay = Some(read_value(&mut i)),
            "--reps" => args.reps = parse!(&mut i, "--reps"),
            "--batch" => args.batch = parse!(&mut i, "--batch"),
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            "--gen-grid" => {
                let v = read_value(&mut i);
                let (r, c) = v.split_once('x').unwrap_or_else(|| {
                    eprintln!("--gen-grid expects ROWSxCOLS, e.g. 16x16");
                    exit(2);
                });
                let rows = r.parse().unwrap_or(0);
                let cols = c.parse().unwrap_or(0);
                if rows == 0 || cols == 0 {
                    eprintln!("--gen-grid expects ROWSxCOLS, e.g. 16x16");
                    exit(2);
                }
                args.gen_grid = Some((rows, cols));
            }
            "--out" => args.out = Some(read_value(&mut i)),
            "--count" => args.count = parse!(&mut i, "--count"),
            "--seed" => args.seed = parse!(&mut i, "--seed"),
            "--grid-seed" => args.grid_seed = parse!(&mut i, "--grid-seed"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 1;
    }
    args
}

/// A connected session: framed requests over one TCP stream.
struct Session {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Session {
    fn connect(args: &Args) -> Session {
        let addr = resolve_addr(args);
        let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            exit(1);
        });
        stream.set_nodelay(true).ok();
        Session {
            reader: BufReader::new(stream.try_clone().expect("clone TCP stream")),
            writer: BufWriter::new(stream),
        }
    }

    fn ask(&mut self, req: &Request) -> Response {
        write_request(&mut self.writer, req).unwrap_or_else(|e| {
            eprintln!("request failed: {e}");
            exit(1);
        });
        match read_response(&mut self.reader) {
            Ok(Some(resp)) => resp,
            Ok(None) => {
                eprintln!("server hung up");
                exit(1);
            }
            Err(e) => {
                eprintln!("response failed: {e}");
                exit(1);
            }
        }
    }
}

/// `--addr` verbatim, or poll `--addr-file` until the daemon writes it.
fn resolve_addr(args: &Args) -> String {
    if let Some(addr) = &args.addr {
        return addr.clone();
    }
    let Some(file) = &args.addr_file else {
        eprintln!("--addr HOST:PORT or --addr-file FILE is required");
        exit(2);
    };
    let deadline = Instant::now() + Duration::from_secs(args.wait_secs);
    loop {
        if let Ok(text) = std::fs::read_to_string(file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("timed out waiting for {file}");
            exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn generate_workload(args: &Args) {
    let (rows, cols) = args.gen_grid.expect("gen mode");
    let Some(out) = &args.out else {
        eprintln!("--gen-grid needs --out FILE");
        exit(2);
    };
    let g = seeded_grid(rows, cols, args.grid_seed);
    let pairs = random_pairs(g.num_vertices(), args.count.max(1), args.seed);
    // Exact expected distances, one Dijkstra per distinct source.
    let mut by_source: std::collections::HashMap<u32, Vec<Distance>> =
        std::collections::HashMap::new();
    let expected: Vec<Distance> = pairs
        .iter()
        .map(|p| {
            by_source
                .entry(p.source)
                .or_insert_with(|| dijkstra(&g, p.source))[p.target as usize]
        })
        .collect();
    write_workload_file(std::path::Path::new(out), &pairs, Some(&expected)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!(
        "wrote {} queries over the {rows}x{cols} grid (seed {:#x}) to {out}",
        pairs.len(),
        args.grid_seed
    );
}

/// Groups consecutive same-source pairs into one-to-many batches of at most
/// `batch` targets (preserving replay order within a group).
fn batch_plan(pairs: &[QueryPair], batch: usize) -> Vec<(u32, Vec<u32>)> {
    let mut plan: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut by_source: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    for p in pairs {
        let entry = by_source.entry(p.source).or_insert_with(|| {
            order.push(p.source);
            Vec::new()
        });
        entry.push(p.target);
    }
    for s in order {
        let targets = &by_source[&s];
        for chunk in targets.chunks(batch.max(1)) {
            plan.push((s, chunk.to_vec()));
        }
    }
    plan
}

fn replay(args: &Args, session: &mut Session) {
    let file = args.replay.as_deref().expect("replay mode");
    let w = read_workload_file(std::path::Path::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read workload {file}: {e}");
        exit(1);
    });
    if w.pairs.is_empty() {
        eprintln!("workload {file} holds no queries");
        exit(1);
    }
    let expected: std::collections::HashMap<(u32, u32), Distance> = if w.has_expected() {
        w.pairs
            .iter()
            .zip(&w.expected)
            .map(|(p, &d)| ((p.source, p.target), d))
            .collect()
    } else {
        Default::default()
    };
    let mut mismatches = 0u64;
    let mut queries = 0u64;
    let mut check = |s: u32, t: u32, got: Distance| {
        queries += 1;
        if let Some(&want) = expected.get(&(s, t)) {
            if got != want {
                if mismatches < 10 {
                    let render = |d: Distance| {
                        if d >= INFINITY {
                            "inf".to_string()
                        } else {
                            d.to_string()
                        }
                    };
                    eprintln!(
                        "MISMATCH ({s}, {t}): server says {}, workload expects {}",
                        render(got),
                        render(want)
                    );
                }
                mismatches += 1;
            }
        }
    };

    // The grouping is pure in (pairs, batch): build the request values
    // once, outside the timed section, so the printed q/s measures the
    // server, not plan construction.
    let plan: Vec<Request> = if args.batch > 0 {
        batch_plan(&w.pairs, args.batch)
            .into_iter()
            .map(|(source, targets)| Request::OneToMany { source, targets })
            .collect()
    } else {
        Vec::new()
    };
    let start = Instant::now();
    for _ in 0..args.reps.max(1) {
        if args.batch > 0 {
            for req in &plan {
                let Request::OneToMany { source, targets } = req else {
                    unreachable!("the plan holds only one-to-many requests");
                };
                match session.ask(req) {
                    Response::Distances(ds) if ds.len() == targets.len() => {
                        for (&t, d) in targets.iter().zip(ds) {
                            check(*source, t, d);
                        }
                    }
                    Response::Error(msg) => {
                        eprintln!("server error: {msg}");
                        exit(1);
                    }
                    other => {
                        eprintln!("unexpected response {other:?}");
                        exit(1);
                    }
                }
            }
        } else {
            for p in &w.pairs {
                match session.ask(&Request::Distance(p.source, p.target)) {
                    Response::Distance(d) => check(p.source, p.target, d),
                    Response::Error(msg) => {
                        eprintln!("server error: {msg}");
                        exit(1);
                    }
                    other => {
                        eprintln!("unexpected response {other:?}");
                        exit(1);
                    }
                }
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let qps = if seconds > 0.0 {
        queries as f64 / seconds
    } else {
        0.0
    };
    println!(
        "replayed {queries} queries in {seconds:.3} s ({qps:.0} q/s), {mismatches} mismatches{}",
        if expected.is_empty() {
            " (no expected distances in file)"
        } else {
            ""
        }
    );
    if mismatches > 0 || queries == 0 || qps <= 0.0 {
        exit(1);
    }
}

fn print_stats(session: &mut Session) {
    let Response::Stats(s) = session.ask(&Request::Stats) else {
        eprintln!("unexpected response to Stats");
        exit(1);
    };
    let method = Method::from_tag(s.method_tag)
        .map(|m| m.to_string())
        .unwrap_or_else(|| format!("unknown tag {}", s.method_tag));
    println!(
        "method {method}\nnum_vertices {}\nindex_bytes {}\nthreads {}\nmapped {}\n\
         distance_queries {}\none_to_many_queries {}\none_to_many_targets {}\n\
         cache_hits {}\ncache_misses {}\ncache_hit_rate {:.4}\ncache_len {}\ncache_capacity {}",
        s.num_vertices,
        s.index_bytes,
        s.threads,
        s.mapped,
        s.distance_queries,
        s.one_to_many_queries,
        s.one_to_many_targets,
        s.cache_hits,
        s.cache_misses,
        s.cache_hit_rate(),
        s.cache_len,
        s.cache_capacity
    );
}

fn main() {
    let args = parse_args();
    if args.gen_grid.is_some() {
        generate_workload(&args);
        return;
    }
    let modes = [
        args.distance.is_some(),
        args.replay.is_some(),
        args.stats,
        args.shutdown,
    ];
    if modes.iter().filter(|&&m| m).count() != 1 {
        eprintln!("pick exactly one mode: --distance, --replay, --stats or --shutdown");
        exit(2);
    }
    let mut session = Session::connect(&args);
    if let Some((s, t)) = args.distance {
        match session.ask(&Request::Distance(s, t)) {
            Response::Distance(d) if d >= INFINITY => println!("inf"),
            Response::Distance(d) => println!("{d}"),
            Response::Error(msg) => {
                eprintln!("server error: {msg}");
                exit(1);
            }
            other => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
        }
    } else if args.replay.is_some() {
        replay(&args, &mut session);
    } else if args.stats {
        print_stats(&mut session);
    } else if args.shutdown {
        match session.ask(&Request::Shutdown) {
            Response::ShuttingDown => eprintln!("server acknowledged shutdown"),
            other => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
        }
    }
}
