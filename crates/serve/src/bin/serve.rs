//! `hc2l-serve` — the serve-only distance-query daemon.
//!
//! ```text
//! hc2l-serve --index paris.hc2l [--port 7171] [--threads N] [--cache N]
//!            [--model epoll|threads] [--addr-file FILE] [--buffered]
//!            [--idle-timeout SECS] [--stall-timeout SECS]
//!            [--drain-secs SECS] [--max-inflight N] [--metrics-every SECS]
//! hc2l-serve --grid ROWSxCOLS [--grid-seed S] [--method hc2l|ch|...] [...]
//! hc2l-serve --index paris.hc2l --bench [--threads N] [--cache N]
//!            [--bench-queries N] [--bench-reps N] [--seed S]
//!            [--bench-scaling 8,64,512]
//! ```
//!
//! Loads one saved index container (memory-mapped; `--buffered` forces the
//! heap-read fallback) and serves the binary wire protocol on
//! `127.0.0.1:PORT` until a client sends `Shutdown`. `--model` picks the
//! connection model: `epoll` (the default where it exists) multiplexes any
//! number of connections over `--threads` reactor threads; `threads` is the
//! buffered thread-per-connection loop of at most `--threads` workers.
//! `epoll` is Linux-only and silently degrades to `threads` elsewhere —
//! the effective model is printed at startup. `--port 0` picks an
//! ephemeral port; `--addr-file` writes the resolved `host:port` to a
//! file once listening, which is how scripted callers (CI) rendezvous.
//!
//! `--grid ROWSxCOLS` serves a seeded synthetic grid instead of a saved
//! container: the daemon builds a `--method` index (default `ch`) over the
//! grid in-process and — because it then owns the underlying graph — accepts
//! live `UpdateWeights` frames (`hc2l-query --update/--update-file`). A
//! daemon started from `--index` serves a static snapshot and answers
//! update frames with a typed error.
//!
//! Overload and fault posture: `--idle-timeout` (default 300s) reaps
//! connections quiet at a frame boundary; `--stall-timeout` (default 30s)
//! is the per-request progress deadline — it reaps peers stuck mid-frame
//! or refusing to drain responses (slow loris); `0` disables either.
//! `--drain-secs` (default 3) bounds how long shutdown waits for
//! already-queued response bytes to flush. `--max-inflight N` (default 0 =
//! unlimited) sheds queries beyond N concurrently executing with a typed
//! `Overloaded` response the client retries with backoff.
//!
//! Observability: every request is recorded into per-opcode latency
//! histograms (cache hit/miss split for distance) — scrape them as
//! Prometheus text with `hc2l-query --metrics`, or pass `--metrics-every
//! SECS` to dump one-line per-opcode summaries to stderr on that period
//! (0, the default, disables the dump). `HC2L_LOG=info|debug` raises the
//! stderr log level (default `warn`).
//!
//! `--bench` skips the socket layer entirely: it self-drives the shared
//! oracle with `--threads` in-process workers over a seeded random pair
//! workload and prints aggregate queries/second — the serving-throughput
//! number for the loaded index. `--bench-scaling COUNTS` additionally
//! boots a real server on an ephemeral port and sweeps the comma-separated
//! connection counts (mostly idle connections, 8 active replayers whose
//! answers are gated against the index), printing one over-the-wire
//! throughput line per count and exiting non-zero on any mismatch.

use std::process::exit;
use std::sync::Arc;

use hc2l_oracle::OracleBuilder;
use hc2l_roadnet::random_pairs;
use hc2l_serve::{
    measure_connection_scaling, measure_throughput, serve_with_model, ServeConfig, ServeModel,
    ServeState,
};

struct Args {
    index: String,
    grid: Option<(usize, usize)>,
    grid_seed: u64,
    method: hc2l_oracle::Method,
    port: u16,
    threads: usize,
    cache: usize,
    model: ServeModel,
    addr_file: Option<String>,
    buffered: bool,
    bench: bool,
    bench_queries: usize,
    bench_reps: usize,
    bench_scaling: Option<Vec<usize>>,
    seed: u64,
    idle_timeout_secs: u64,
    stall_timeout_secs: u64,
    drain_secs: u64,
    max_inflight: usize,
    metrics_every_secs: u64,
}

impl Args {
    fn serve_config(&self) -> ServeConfig {
        let opt = |secs: u64| (secs > 0).then(|| std::time::Duration::from_secs(secs));
        ServeConfig {
            idle_timeout: opt(self.idle_timeout_secs),
            stall_timeout: opt(self.stall_timeout_secs),
            drain: std::time::Duration::from_secs(self.drain_secs),
            max_inflight: self.max_inflight,
        }
    }
}

fn usage() -> ! {
    eprintln!("see the module documentation at the top of serve.rs for usage");
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        index: String::new(),
        grid: None,
        // Matches hc2l-query's --grid-seed default, so generated workloads
        // and update batches line up with a `--grid` daemon out of the box.
        grid_seed: 0xA11CE,
        method: hc2l_oracle::Method::Ch,
        port: 7171,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
        cache: 1 << 16,
        model: ServeModel::platform_default(),
        addr_file: None,
        buffered: false,
        bench: false,
        bench_queries: 2000,
        bench_reps: 200,
        bench_scaling: None,
        seed: 0xBEEF,
        idle_timeout_secs: 300,
        stall_timeout_secs: 30,
        drain_secs: 3,
        max_inflight: 0,
        metrics_every_secs: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let read_value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            exit(2);
        })
    };
    macro_rules! parse {
        ($i:expr, $what:literal) => {
            read_value($i).parse().unwrap_or_else(|_| {
                eprintln!(concat!("invalid ", $what));
                exit(2);
            })
        };
    }
    while i < argv.len() {
        match argv[i].as_str() {
            "--index" => args.index = read_value(&mut i),
            "--grid" => {
                let spec = read_value(&mut i);
                let parsed = spec.split_once('x').and_then(|(r, c)| {
                    Some((r.trim().parse().ok()?, c.trim().parse().ok()?))
                        .filter(|&(r, c): &(usize, usize)| r >= 2 && c >= 2)
                });
                args.grid = Some(parsed.unwrap_or_else(|| {
                    eprintln!("invalid --grid {spec:?}: expected ROWSxCOLS, both >= 2");
                    exit(2);
                }));
            }
            "--grid-seed" => args.grid_seed = parse!(&mut i, "--grid-seed"),
            "--method" => {
                args.method = read_value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2);
                })
            }
            "--port" => args.port = parse!(&mut i, "--port"),
            "--threads" => args.threads = parse!(&mut i, "--threads"),
            "--cache" => args.cache = parse!(&mut i, "--cache"),
            "--model" => {
                args.model = read_value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2);
                })
            }
            "--addr-file" => args.addr_file = Some(read_value(&mut i)),
            "--buffered" => args.buffered = true,
            "--bench" => args.bench = true,
            "--bench-queries" => args.bench_queries = parse!(&mut i, "--bench-queries"),
            "--bench-reps" => args.bench_reps = parse!(&mut i, "--bench-reps"),
            "--bench-scaling" => {
                let list = read_value(&mut i);
                let counts: Vec<usize> = list
                    .split(',')
                    .map(|c| {
                        c.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid --bench-scaling count {c:?}");
                            exit(2);
                        })
                    })
                    .collect();
                if counts.is_empty() {
                    eprintln!("--bench-scaling needs at least one connection count");
                    exit(2);
                }
                args.bench_scaling = Some(counts);
            }
            "--seed" => args.seed = parse!(&mut i, "--seed"),
            "--idle-timeout" => args.idle_timeout_secs = parse!(&mut i, "--idle-timeout"),
            "--stall-timeout" => args.stall_timeout_secs = parse!(&mut i, "--stall-timeout"),
            "--drain-secs" => args.drain_secs = parse!(&mut i, "--drain-secs"),
            "--max-inflight" => args.max_inflight = parse!(&mut i, "--max-inflight"),
            "--metrics-every" => args.metrics_every_secs = parse!(&mut i, "--metrics-every"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 1;
    }
    if args.index.is_empty() == args.grid.is_none() {
        eprintln!("exactly one of --index FILE or --grid ROWSxCOLS is required");
        exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    let threads = args.threads.max(1);
    let (state, num_vertices) = if let Some((rows, cols)) = args.grid {
        let g = hc2l_roadnet::seeded_grid(rows, cols, args.grid_seed);
        let n = g.num_vertices();
        let oracle = OracleBuilder::new(args.method).build(&g);
        eprintln!(
            "built {} index over a {rows}x{cols} seeded grid ({n} vertices); \
             live weight updates enabled",
            args.method
        );
        let state = Arc::new(
            ServeState::with_updates(g, oracle, threads, args.cache)
                .with_config(args.serve_config()),
        );
        (state, n)
    } else {
        let path = std::path::Path::new(&args.index);
        let oracle = if args.buffered {
            hc2l_oracle::SharedOracle::open_buffered(path)
        } else {
            OracleBuilder::open(path)
        }
        .unwrap_or_else(|e| {
            eprintln!("cannot open index {}: {e}", path.display());
            exit(1);
        });
        eprintln!(
            "loaded {} index: {} vertices, {} bytes, {}; static snapshot, weight updates disabled",
            oracle.method(),
            oracle.num_vertices(),
            oracle.index_bytes(),
            if oracle.is_mapped() {
                "memory-mapped"
            } else {
                "heap-buffered"
            }
        );
        let n = oracle.num_vertices();
        let state =
            Arc::new(ServeState::new(oracle, threads, args.cache).with_config(args.serve_config()));
        (state, n)
    };

    if args.bench {
        let pairs = random_pairs(num_vertices, args.bench_queries.max(1), args.seed);
        let report = measure_throughput(&state, &pairs, threads, args.bench_reps.max(1));
        println!(
            "threads {} queries {} seconds {:.4} queries_per_second {:.0} cache_hit_rate {:.4}",
            report.threads,
            report.queries,
            report.seconds,
            report.queries_per_second,
            report.cache_hit_rate
        );
        if let Some(counts) = &args.bench_scaling {
            // Expected answers from the index itself: the sweep gates that
            // concurrent serving over the wire is bit-identical to it.
            let expected: Vec<u64> = pairs
                .iter()
                .map(|p| state.oracle().distance(p.source, p.target))
                .collect();
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), args.model)
                .unwrap_or_else(|e| {
                    eprintln!("cannot bind the scaling server: {e}");
                    exit(1);
                });
            let mut failed = false;
            for &count in counts {
                match measure_connection_scaling(server.addr(), &pairs, &expected, count, 8, 2) {
                    Ok(r) => {
                        println!(
                            "connections {} active {} queries {} seconds {:.4} \
                             queries_per_second {:.0} mismatches {}",
                            r.connections,
                            r.active,
                            r.queries,
                            r.seconds,
                            r.queries_per_second,
                            r.mismatches
                        );
                        failed |= r.mismatches > 0;
                    }
                    Err(e) => {
                        eprintln!("scaling run at {count} connections failed: {e}");
                        failed = true;
                    }
                }
            }
            server.shutdown().unwrap_or_else(|e| {
                eprintln!("scaling server shutdown failed: {e}");
                exit(1);
            });
            if failed {
                exit(1);
            }
        }
        return;
    }

    let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", args.port), args.model)
        .unwrap_or_else(|e| {
            eprintln!("cannot bind 127.0.0.1:{}: {e}", args.port);
            exit(1);
        });
    let addr = server.addr();
    if let Some(file) = &args.addr_file {
        // Write-then-rename so a polling client never reads a partial file.
        let tmp = format!("{file}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|_| std::fs::rename(&tmp, file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write --addr-file {file}: {e}");
                exit(1);
            });
    }
    eprintln!(
        "serving on {addr} with the {} model, {} threads (cache: {} entries, kernel: {})",
        args.model.effective(),
        threads,
        args.cache,
        hc2l_graph::active_kernel()
    );
    if args.metrics_every_secs > 0 {
        let state = Arc::clone(&state);
        let every = std::time::Duration::from_secs(args.metrics_every_secs);
        std::thread::spawn(move || {
            let mut last = std::time::Instant::now();
            while !state.is_shutting_down() {
                // Poll the shutdown flag on a short interval so the dump
                // thread never outlives the drain by a full period.
                std::thread::sleep(std::time::Duration::from_millis(200));
                if last.elapsed() < every {
                    continue;
                }
                last = std::time::Instant::now();
                let lat = state.latency();
                eprintln!(
                    "[metrics] distance(hit)  {}\n[metrics] distance(miss) {}\n\
                     [metrics] one_to_many    {}\n[metrics] update_weights {}",
                    lat.distance_hit.snapshot().summary(),
                    lat.distance_miss.snapshot().summary(),
                    lat.one_to_many.snapshot().summary(),
                    lat.update_weights.snapshot().summary()
                );
            }
        });
    }
    if let Err(e) = server.wait() {
        eprintln!("serve loop failed: {e}");
        exit(1);
    }
    let stats = state.stats();
    eprintln!(
        "shut down cleanly: {} distance queries, {} one-to-many ({} targets), cache hit rate {:.4}",
        stats.distance_queries,
        stats.one_to_many_queries,
        stats.one_to_many_targets,
        stats.cache_hit_rate()
    );
}
