//! The serve loop: shared state, a blocking thread-per-connection TCP
//! server, and in-process request execution.
//!
//! One [`ServeState`] — index, result cache, counters — is built per served
//! index and shared behind an `Arc`: the daemon's connection handlers, the
//! `--bench` self-drive workers and the in-process tests all execute
//! requests through the same [`ServeState::distance`] /
//! [`ServeState::one_to_many_into`] entry points, so every path is measured
//! and cached identically. The query path takes **no locks**: the oracle is
//! read-only (`Send + Sync`), counters are relaxed atomics, and only a
//! cache probe touches a (sharded) mutex.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use hc2l_graph::{Distance, Vertex};
use hc2l_oracle::{DistanceOracle, Method, Oracle, SharedOracle};

use crate::cache::QueryCache;
use crate::protocol::{read_request, write_response, Request, Response, ServerStats};

/// Any index the serve loop can answer from: a zero-copy mmap-backed view
/// ([`SharedOracle`], the daemon's path) or an owned in-memory index
/// ([`Oracle`], the path tests and embedded users take after `build`/`load`).
#[derive(Debug, Clone)]
pub enum ServedOracle {
    /// Zero-copy view over a loaded container (see `OracleBuilder::open`).
    Shared(SharedOracle),
    /// Owned index (built in-process or decoded by `OracleBuilder::load`);
    /// boxed so the rarely-held large variant does not inflate the enum.
    Built(Box<Oracle>),
}

impl ServedOracle {
    /// The served method.
    pub fn method(&self) -> Method {
        match self {
            ServedOracle::Shared(o) => o.method(),
            ServedOracle::Built(o) => o.method(),
        }
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.num_vertices(),
            ServedOracle::Built(o) => o.num_vertices(),
        }
    }

    /// Container-file footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.index_bytes(),
            ServedOracle::Built(o) => o.index_bytes(),
        }
    }

    /// Whether answers come straight out of a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            ServedOracle::Shared(o) => o.is_mapped(),
            ServedOracle::Built(_) => false,
        }
    }

    #[inline]
    fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        match self {
            ServedOracle::Shared(o) => o.distance(s, t),
            ServedOracle::Built(o) => o.distance(s, t),
        }
    }

    #[inline]
    fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        match self {
            ServedOracle::Shared(o) => o.one_to_many_into(s, targets, out),
            ServedOracle::Built(o) => o.one_to_many_into(s, targets, out),
        }
    }
}

impl From<SharedOracle> for ServedOracle {
    fn from(o: SharedOracle) -> Self {
        ServedOracle::Shared(o)
    }
}

impl From<Oracle> for ServedOracle {
    fn from(o: Oracle) -> Self {
        ServedOracle::Built(Box::new(o))
    }
}

/// Everything a worker needs to answer queries: the read-only oracle, the
/// sharded result cache, and the served/shutdown counters.
#[derive(Debug)]
pub struct ServeState {
    oracle: ServedOracle,
    cache: QueryCache,
    threads: usize,
    distance_queries: AtomicU64,
    one_to_many_queries: AtomicU64,
    one_to_many_targets: AtomicU64,
    shutdown: AtomicBool,
    /// Set by [`serve`] once the listener is bound; used to nudge the
    /// blocking `accept` out of its wait when shutdown is requested.
    bound_addr: OnceLock<SocketAddr>,
}

impl ServeState {
    /// Wraps an oracle with a result cache of `cache_capacity` entries
    /// (0 disables caching) for a serve loop of `threads` workers.
    pub fn new(oracle: impl Into<ServedOracle>, threads: usize, cache_capacity: usize) -> Self {
        ServeState {
            oracle: oracle.into(),
            cache: QueryCache::new(cache_capacity, QueryCache::DEFAULT_SHARDS),
            threads: threads.max(1),
            distance_queries: AtomicU64::new(0),
            one_to_many_queries: AtomicU64::new(0),
            one_to_many_targets: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bound_addr: OnceLock::new(),
        }
    }

    /// The served oracle.
    pub fn oracle(&self) -> &ServedOracle {
        &self.oracle
    }

    /// The result cache (for inspection; workers go through
    /// [`ServeState::distance`]).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers a point-to-point query through the cache, counting it.
    #[inline]
    pub fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        self.distance_queries.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.cache.get(s, t) {
            return d;
        }
        let d = self.oracle.distance(s, t);
        self.cache.insert(s, t, d);
        d
    }

    /// Answers a batched one-to-many query into a caller-provided buffer,
    /// counting it. Batches bypass the point cache: the batched kernels
    /// amortise the per-source work already, and polluting the LRU with
    /// whole rows would evict the point working set.
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        self.one_to_many_queries.fetch_add(1, Ordering::Relaxed);
        self.one_to_many_targets
            .fetch_add(targets.len() as u64, Ordering::Relaxed);
        self.oracle.one_to_many_into(s, targets, out);
    }

    /// Requests the serve loop to stop accepting and drain. When a server
    /// is running, the blocking `accept` is nudged awake with a throwaway
    /// loopback connection so the loop observes the flag promptly.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = self.bound_addr.get() {
            let _ = TcpStream::connect_timeout(addr, std::time::Duration::from_secs(1));
        }
    }

    /// Whether shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Counter snapshot in wire form.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.stats();
        ServerStats {
            method_tag: self.oracle.method().tag(),
            num_vertices: self.oracle.num_vertices() as u64,
            index_bytes: self.oracle.index_bytes() as u64,
            threads: self.threads as u32,
            mapped: self.oracle.is_mapped(),
            distance_queries: self.distance_queries.load(Ordering::Relaxed),
            one_to_many_queries: self.one_to_many_queries.load(Ordering::Relaxed),
            one_to_many_targets: self.one_to_many_targets.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_len: cache.len as u64,
            cache_capacity: cache.capacity as u64,
        }
    }

    /// Validates a one-to-many request: batch bounded by the
    /// response-frame cap, every vertex in range.
    fn check_one_to_many(&self, source: Vertex, targets: &[Vertex]) -> Result<(), String> {
        let n = self.oracle.num_vertices() as Vertex;
        if targets.len() > crate::protocol::MAX_ONE_TO_MANY_TARGETS {
            return Err(format!(
                "batch of {} targets exceeds the {}-target response-frame cap; split it",
                targets.len(),
                crate::protocol::MAX_ONE_TO_MANY_TARGETS
            ));
        }
        if source >= n {
            return Err(format!(
                "source {source} out of range on a {n}-vertex index"
            ));
        }
        if let Some(bad) = targets.iter().find(|&&t| t >= n) {
            return Err(format!("target {bad} out of range on a {n}-vertex index"));
        }
        Ok(())
    }

    /// Executes one request. Out-of-range vertices produce a
    /// [`Response::Error`], never a panic — one bad client query must not
    /// take a worker thread down.
    pub fn execute(&self, req: &Request, batch_buf: &mut Vec<Distance>) -> Response {
        let n = self.oracle.num_vertices() as Vertex;
        match req {
            Request::Distance(s, t) => {
                if *s >= n || *t >= n {
                    return Response::Error(format!(
                        "vertex out of range: ({s}, {t}) on a {n}-vertex index"
                    ));
                }
                Response::Distance(self.distance(*s, *t))
            }
            Request::OneToMany { source, targets } => {
                match self.check_one_to_many(*source, targets) {
                    Err(msg) => Response::Error(msg),
                    Ok(()) => {
                        self.one_to_many_into(*source, targets, batch_buf);
                        Response::Distances(batch_buf.clone())
                    }
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
        }
    }
}

/// A running server: the bound address plus the accept-loop handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    accept_loop: Option<JoinHandle<io::Result<()>>>,
    state: Arc<ServeState>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters, shutdown flag).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Blocks until the serve loop exits (i.e. until some client sends
    /// `Shutdown`), then reports the accept loop's result.
    pub fn wait(mut self) -> io::Result<()> {
        let handle = self
            .accept_loop
            .take()
            .expect("wait consumes the only handle");
        handle.join().expect("accept loop panicked")
    }

    /// Requests shutdown from this side and waits for the drain.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.request_shutdown();
        self.wait()
    }
}

/// Binds `addr` and runs a blocking thread-per-connection accept loop in a
/// background thread until a `Shutdown` request arrives.
///
/// Each accepted connection gets its own handler thread with its own reused
/// batch buffer; at most `state.threads` connections are served at once —
/// later ones queue in the listen backlog, preserving strict bounds on
/// worker memory. Returns once the listener is bound, so the caller can
/// read the resolved address immediately (pass port 0 for an ephemeral
/// port).
pub fn serve(state: Arc<ServeState>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    state
        .bound_addr
        .set(bound)
        .map_err(|_| io::Error::new(io::ErrorKind::AddrInUse, "state already serves a listener"))?;
    let loop_state = Arc::clone(&state);
    let accept_loop = std::thread::Builder::new()
        .name("hc2l-serve-accept".into())
        .spawn(move || accept_loop(listener, loop_state))?;
    Ok(ServerHandle {
        addr: bound,
        accept_loop: Some(accept_loop),
        state,
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    // Active-handler cap: a plain counter, checked before spawning. The
    // accept loop blocks in `accept`, so a `Shutdown` executed by a handler
    // nudges it with a loopback connection (see `ServerHandle::shutdown`).
    let active = Arc::new(AtomicUsize::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Live connection streams, so the drain below can unblock handler
    // threads parked in a blocking read (an idle client must not wedge
    // shutdown). Each handler removes its own entry when it exits, so the
    // registry holds only open connections.
    let conns: Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let mut next_conn_id: u64 = 0;
    let mut result: io::Result<()> = Ok(());
    loop {
        if state.is_shutting_down() {
            break;
        }
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            // Transient per-connection failures must not kill the listener.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) =>
            {
                continue
            }
            // Anything else (fd exhaustion, listener teardown) ends the
            // loop — but through the drain below, never abandoning live
            // handler threads.
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if state.is_shutting_down() {
            break;
        }
        // Worker cap: park excess connections until a slot frees up. The
        // cap is *soft* — after a bounded wait the connection is served
        // anyway, so a daemon whose slots are all held by idle clients
        // still makes progress (and can still be told to shut down over
        // the wire).
        let cap_deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while active.load(Ordering::Acquire) >= state.threads
            && std::time::Instant::now() < cap_deadline
        {
            if state.is_shutting_down() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        if state.is_shutting_down() {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        let conn_id = next_conn_id;
        next_conn_id += 1;
        match stream.try_clone() {
            Ok(clone) => conns.lock().unwrap().insert(conn_id, clone),
            // An unregistered connection could not be unblocked by the
            // shutdown drain and would wedge the final join; refuse it
            // (the peer sees a reset and can retry) rather than serve it
            // untracked.
            Err(_) => {
                drop(stream);
                continue;
            }
        };
        active.fetch_add(1, Ordering::AcqRel);
        let conn_state = Arc::clone(&state);
        let conn_active = Arc::clone(&active);
        let conn_registry = Arc::clone(&conns);
        let spawned = std::thread::Builder::new()
            .name("hc2l-serve-worker".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_state);
                conn_registry.lock().unwrap().remove(&conn_id);
                conn_active.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(e) => {
                // The closure (and its stream) never ran: undo the
                // bookkeeping and end the loop through the drain.
                conns.lock().unwrap().remove(&conn_id);
                active.fetch_sub(1, Ordering::AcqRel);
                result = Err(e);
                break;
            }
        }
    }
    // Drain: close both halves of every still-open connection so handlers
    // parked in a blocking read observe EOF and exit, then join them all —
    // on the error paths too, so no handler thread is ever abandoned.
    for (_, stream) in conns.lock().unwrap().drain() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for h in handlers {
        let _ = h.join();
    }
    result
}

/// Serves one connection until the peer hangs up, a protocol error occurs,
/// or shutdown is requested. The batch buffer lives for the whole
/// connection, so steady-state one-to-many serving does no per-request
/// allocation beyond the response frame.
fn handle_connection(stream: TcpStream, state: &ServeState) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut batch_buf: Vec<Distance> = Vec::new();
    while let Some(req) = read_request(&mut reader)? {
        // A Shutdown request is acknowledged *before* the drain starts:
        // `execute` would set the shutdown flag first, and the accept
        // loop's drain could then close this very socket ahead of the
        // response reaching the peer.
        if matches!(req, Request::Shutdown) {
            write_response(&mut writer, &Response::ShuttingDown)?;
            state.request_shutdown();
            break;
        }
        // Batched answers stream straight from the reused buffer; routing
        // them through an owned `Response` would clone the whole row per
        // request.
        if let Request::OneToMany { source, targets } = &req {
            match state.check_one_to_many(*source, targets) {
                Err(msg) => write_response(&mut writer, &Response::Error(msg))?,
                Ok(()) => {
                    state.one_to_many_into(*source, targets, &mut batch_buf);
                    crate::protocol::write_distances(&mut writer, &batch_buf)?;
                }
            }
        } else {
            let resp = state.execute(&req, &mut batch_buf);
            write_response(&mut writer, &resp)?;
        }
        if state.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_request;
    use hc2l_graph::toy::paper_figure1;
    use hc2l_oracle::OracleBuilder;

    fn test_state(cache: usize) -> Arc<ServeState> {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        Arc::new(ServeState::new(oracle, 4, cache))
    }

    fn ask(addr: SocketAddr, req: &Request) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, req).unwrap();
        crate::protocol::read_response(&mut reader)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn end_to_end_over_tcp() {
        let state = test_state(256);
        let expected = state.oracle().distance(2, 9);
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();

        assert_eq!(
            ask(addr, &Request::Distance(2, 9)),
            Response::Distance(expected)
        );
        // A second ask hits the cache and agrees.
        assert_eq!(
            ask(addr, &Request::Distance(9, 2)),
            Response::Distance(expected)
        );

        let targets: Vec<Vertex> = (0..16).collect();
        let Response::Distances(row) = ask(
            addr,
            &Request::OneToMany {
                source: 3,
                targets: targets.clone(),
            },
        ) else {
            panic!("expected a Distances response");
        };
        let mut want = Vec::new();
        state.oracle().one_to_many_into(3, &targets, &mut want);
        assert_eq!(row, want);

        // Out-of-range queries error without killing the server.
        assert!(matches!(
            ask(addr, &Request::Distance(999, 0)),
            Response::Error(_)
        ));

        let Response::Stats(stats) = ask(addr, &Request::Stats) else {
            panic!("expected a Stats response");
        };
        assert_eq!(stats.method_tag, Method::Hl.tag());
        assert_eq!(stats.num_vertices, 16);
        assert_eq!(stats.distance_queries, 2);
        assert_eq!(stats.one_to_many_queries, 1);
        assert_eq!(stats.one_to_many_targets, 16);
        assert!(stats.cache_hits >= 1);

        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
    }

    #[test]
    fn shutdown_from_the_handle_side() {
        let state = test_state(0);
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        assert!(matches!(
            ask(addr, &Request::Distance(0, 5)),
            Response::Distance(_)
        ));
        server.shutdown().unwrap();
        assert!(state.is_shutting_down());
    }

    #[test]
    fn concurrent_clients_get_exact_answers() {
        let state = test_state(1024);
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        let mut expected = [[0u64; 16]; 16];
        for s in 0..16u32 {
            for t in 0..16u32 {
                expected[s as usize][t as usize] = state.oracle().distance(s, t);
            }
        }
        let clients: Vec<_> = (0..8u32)
            .map(|id| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    let mut got = Vec::new();
                    for i in 0..200u32 {
                        let (s, t) = ((i + id) % 16, (i * 7) % 16);
                        write_request(&mut writer, &Request::Distance(s, t)).unwrap();
                        let Some(Response::Distance(d)) =
                            crate::protocol::read_response(&mut reader).unwrap()
                        else {
                            panic!("expected a distance");
                        };
                        got.push((s, t, d));
                    }
                    got
                })
            })
            .collect();
        for c in clients {
            for (s, t, d) in c.join().unwrap() {
                assert_eq!(d, expected[s as usize][t as usize]);
            }
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_even_with_an_idle_connection() {
        // An idle client parked between requests must not wedge the drain:
        // the accept loop half-closes live sockets so blocked reads see EOF.
        let state = test_state(0);
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        let idle = TcpStream::connect(addr).unwrap();
        // Make sure the idle connection is accepted and its handler is
        // parked in a read before shutdown is requested.
        assert!(matches!(
            ask(addr, &Request::Distance(1, 2)),
            Response::Distance(_)
        ));
        let done = std::thread::spawn(move || server.shutdown());
        // The drain must finish promptly despite the idle connection.
        let start = std::time::Instant::now();
        done.join().unwrap().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "drain took {:?}",
            start.elapsed()
        );
        drop(idle);
    }

    #[test]
    fn saturated_daemon_still_accepts_a_shutdown_client() {
        // All worker slots held by an idle client: the soft cap must let a
        // late client in so a wire-protocol Shutdown can still land.
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        let state = Arc::new(ServeState::new(oracle, 1, 0)); // one slot
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        // Occupy the only slot with a connection that stays idle.
        let idle = TcpStream::connect(addr).unwrap();
        // Give the accept loop time to hand the idle connection to a worker.
        std::thread::sleep(std::time::Duration::from_millis(100));
        // A second client must still get served (after the soft-cap wait)
        // and be able to shut the daemon down.
        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
        drop(idle);
    }

    #[test]
    fn oversized_batches_are_rejected_not_framed() {
        // A request whose *response* would exceed the frame cap must fail
        // as a typed Error on the server, not as a malformed frame on the
        // client (u64 distances are twice the width of u32 targets).
        let state = test_state(0);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![0; crate::protocol::MAX_ONE_TO_MANY_TARGETS + 1],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Error(ref msg) if msg.contains("cap")));
        // A cap-sized batch of valid targets still answers (length checks
        // happen before vertex-range checks).
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1; 100],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 100));
    }

    #[test]
    fn execute_bypasses_cache_for_batches_but_counts_them() {
        let state = test_state(64);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1, 2, 3],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 3));
        let stats = state.stats();
        assert_eq!(stats.one_to_many_queries, 1);
        assert_eq!(stats.one_to_many_targets, 3);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }
}
