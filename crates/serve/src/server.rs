//! The serve loop: shared state, two interchangeable TCP connection models
//! (blocking thread-per-connection and an event-driven epoll reactor), and
//! in-process request execution.
//!
//! One [`ServeState`] — index, result cache, counters — is built per served
//! index and shared behind an `Arc`: the daemon's connection handlers, the
//! `--bench` self-drive workers and the in-process tests all execute
//! requests through the same [`ServeState::distance`] /
//! [`ServeState::one_to_many_into`] entry points, so every path is measured
//! and cached identically. The query path takes **no locks**: the oracle is
//! read-only (`Send + Sync`), counters are relaxed atomics, and only a
//! cache probe touches a (sharded) mutex.
//!
//! [`serve`] keeps the original blocking model; [`serve_with_model`] selects
//! a [`ServeModel`] — the epoll reactor (`crate::reactor`) holds hundreds of
//! mostly-idle connections on a handful of threads, where the blocking model
//! would need one OS thread per client.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use hc2l_graph::{Distance, Vertex};
use hc2l_oracle::{DistanceOracle, Method, Oracle, SharedOracle};

use crate::cache::QueryCache;
use crate::protocol::{read_request, write_response, Request, Response, ServerStats};

/// How the serve loop multiplexes client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeModel {
    /// One blocking OS thread per connection (buffered reads and writes) —
    /// the portable fallback, right up to a few dozen concurrent clients.
    Threads,
    /// Event-driven reactor: N threads each own an epoll instance and a
    /// per-connection state table with incremental frame decoding, so
    /// hundreds of mostly-idle connections cost no threads and no blocked
    /// stacks. Linux-only; [`ServeModel::effective`] falls back to
    /// [`ServeModel::Threads`] elsewhere.
    Epoll,
}

impl ServeModel {
    /// The model that will actually run on this platform: `Epoll` degrades
    /// to `Threads` off Linux (epoll is a Linux syscall family).
    pub fn effective(self) -> ServeModel {
        if cfg!(target_os = "linux") {
            self
        } else {
            ServeModel::Threads
        }
    }

    /// The platform default: the reactor where it exists, threads elsewhere.
    pub fn platform_default() -> ServeModel {
        ServeModel::Epoll.effective()
    }

    /// Every model that actually runs on this platform — what tests (and
    /// anything else wanting full coverage) iterate over.
    pub fn available() -> &'static [ServeModel] {
        if cfg!(target_os = "linux") {
            &[ServeModel::Threads, ServeModel::Epoll]
        } else {
            &[ServeModel::Threads]
        }
    }
}

impl std::str::FromStr for ServeModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(ServeModel::Threads),
            "epoll" => Ok(ServeModel::Epoll),
            other => Err(format!(
                "unknown connection model {other:?} (threads|epoll)"
            )),
        }
    }
}

impl std::fmt::Display for ServeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeModel::Threads => "threads",
            ServeModel::Epoll => "epoll",
        })
    }
}

/// Any index the serve loop can answer from: a zero-copy mmap-backed view
/// ([`SharedOracle`], the daemon's path) or an owned in-memory index
/// ([`Oracle`], the path tests and embedded users take after `build`/`load`).
#[derive(Debug, Clone)]
pub enum ServedOracle {
    /// Zero-copy view over a loaded container (see `OracleBuilder::open`).
    Shared(SharedOracle),
    /// Owned index (built in-process or decoded by `OracleBuilder::load`);
    /// boxed so the rarely-held large variant does not inflate the enum.
    Built(Box<Oracle>),
}

impl ServedOracle {
    /// The served method.
    pub fn method(&self) -> Method {
        match self {
            ServedOracle::Shared(o) => o.method(),
            ServedOracle::Built(o) => o.method(),
        }
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.num_vertices(),
            ServedOracle::Built(o) => o.num_vertices(),
        }
    }

    /// Container-file footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.index_bytes(),
            ServedOracle::Built(o) => o.index_bytes(),
        }
    }

    /// Whether answers come straight out of a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            ServedOracle::Shared(o) => o.is_mapped(),
            ServedOracle::Built(_) => false,
        }
    }

    /// Uncounted, uncached point-to-point query straight at the index
    /// (callers wanting the serve path go through [`ServeState::distance`]).
    #[inline]
    pub fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        match self {
            ServedOracle::Shared(o) => o.distance(s, t),
            ServedOracle::Built(o) => o.distance(s, t),
        }
    }

    /// Uncounted batched query straight at the index.
    #[inline]
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        match self {
            ServedOracle::Shared(o) => o.one_to_many_into(s, targets, out),
            ServedOracle::Built(o) => o.one_to_many_into(s, targets, out),
        }
    }
}

impl From<SharedOracle> for ServedOracle {
    fn from(o: SharedOracle) -> Self {
        ServedOracle::Shared(o)
    }
}

impl From<Oracle> for ServedOracle {
    fn from(o: Oracle) -> Self {
        ServedOracle::Built(Box::new(o))
    }
}

/// Everything a worker needs to answer queries: the read-only oracle, the
/// sharded result cache, and the served/shutdown counters.
#[derive(Debug)]
pub struct ServeState {
    oracle: ServedOracle,
    cache: QueryCache,
    threads: usize,
    distance_queries: AtomicU64,
    one_to_many_queries: AtomicU64,
    one_to_many_targets: AtomicU64,
    shutdown: AtomicBool,
    /// Set by [`serve`] once the listener is bound; guards against two
    /// serve loops sharing one state's shutdown flag.
    bound_addr: OnceLock<SocketAddr>,
}

impl ServeState {
    /// Wraps an oracle with a result cache of `cache_capacity` entries
    /// (0 disables caching) for a serve loop of `threads` workers.
    pub fn new(oracle: impl Into<ServedOracle>, threads: usize, cache_capacity: usize) -> Self {
        ServeState {
            oracle: oracle.into(),
            cache: QueryCache::new(cache_capacity, QueryCache::DEFAULT_SHARDS),
            threads: threads.max(1),
            distance_queries: AtomicU64::new(0),
            one_to_many_queries: AtomicU64::new(0),
            one_to_many_targets: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bound_addr: OnceLock::new(),
        }
    }

    /// The served oracle.
    pub fn oracle(&self) -> &ServedOracle {
        &self.oracle
    }

    /// Configured worker cap (thread model) / reactor count (epoll model).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The result cache (for inspection; workers go through
    /// [`ServeState::distance`]).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers a point-to-point query through the cache, counting it.
    ///
    /// The in-process hot path: vertices are trusted to be in range (the
    /// throughput driver and embedded users own their workloads). Anything
    /// arriving over the wire goes through [`ServeState::try_distance`],
    /// which validates *before* counting or caching.
    #[inline]
    pub fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        self.distance_queries.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.cache.get(s, t) {
            return d;
        }
        let d = self.oracle.distance(s, t);
        self.cache.insert(s, t, d);
        d
    }

    /// Answers a batched one-to-many query into a caller-provided buffer,
    /// counting it. Batches bypass the point cache: the batched kernels
    /// amortise the per-source work already, and polluting the LRU with
    /// whole rows would evict the point working set.
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        self.one_to_many_queries.fetch_add(1, Ordering::Relaxed);
        self.one_to_many_targets
            .fetch_add(targets.len() as u64, Ordering::Relaxed);
        self.oracle.one_to_many_into(s, targets, out);
    }

    /// Requests the serve loop to stop accepting and drain.
    ///
    /// Both connection models poll this flag on a bounded interval (the
    /// thread model's accept is non-blocking, the reactor's `epoll_wait`
    /// carries a timeout), so raising it is all that's needed — the old
    /// loopback-connect "nudge" is gone. The nudge was a shutdown race of
    /// its own: it silently never arrived when the listener was bound to a
    /// non-loopback or wildcard address, leaving `accept` blocked forever
    /// with the flag already set.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Counter snapshot in wire form.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.stats();
        ServerStats {
            method_tag: self.oracle.method().tag(),
            num_vertices: self.oracle.num_vertices() as u64,
            index_bytes: self.oracle.index_bytes() as u64,
            threads: self.threads as u32,
            mapped: self.oracle.is_mapped(),
            distance_queries: self.distance_queries.load(Ordering::Relaxed),
            one_to_many_queries: self.one_to_many_queries.load(Ordering::Relaxed),
            one_to_many_targets: self.one_to_many_targets.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_len: cache.len as u64,
            cache_capacity: cache.capacity as u64,
        }
    }

    /// Validates a point-to-point request: both vertices in range.
    ///
    /// Validation runs **before** [`ServeState::distance`] so a rejected
    /// request never increments the served-query counter, never records a
    /// cache miss, and never inserts a garbage key into the result cache —
    /// `Stats` and `cache_hit_rate` count only queries that were actually
    /// answered.
    fn check_distance(&self, s: Vertex, t: Vertex) -> Result<(), String> {
        let n = self.oracle.num_vertices() as Vertex;
        if s >= n || t >= n {
            return Err(format!(
                "vertex out of range: ({s}, {t}) on a {n}-vertex index"
            ));
        }
        Ok(())
    }

    /// Answers a point-to-point query with validation first: out-of-range
    /// vertices produce `Err` without touching any counter or the cache.
    pub fn try_distance(&self, s: Vertex, t: Vertex) -> Result<Distance, String> {
        self.check_distance(s, t)?;
        Ok(self.distance(s, t))
    }

    /// Answers a batched query with validation first: a rejected batch
    /// touches no counter and no cache.
    pub fn try_one_to_many_into(
        &self,
        source: Vertex,
        targets: &[Vertex],
        out: &mut Vec<Distance>,
    ) -> Result<(), String> {
        self.check_one_to_many(source, targets)?;
        self.one_to_many_into(source, targets, out);
        Ok(())
    }

    /// Validates a one-to-many request: batch bounded by the
    /// response-frame cap, every vertex in range.
    fn check_one_to_many(&self, source: Vertex, targets: &[Vertex]) -> Result<(), String> {
        let n = self.oracle.num_vertices() as Vertex;
        if targets.len() > crate::protocol::MAX_ONE_TO_MANY_TARGETS {
            return Err(format!(
                "batch of {} targets exceeds the {}-target response-frame cap; split it",
                targets.len(),
                crate::protocol::MAX_ONE_TO_MANY_TARGETS
            ));
        }
        if source >= n {
            return Err(format!(
                "source {source} out of range on a {n}-vertex index"
            ));
        }
        if let Some(bad) = targets.iter().find(|&&t| t >= n) {
            return Err(format!("target {bad} out of range on a {n}-vertex index"));
        }
        Ok(())
    }

    /// Executes one request. Out-of-range vertices produce a
    /// [`Response::Error`], never a panic — one bad client query must not
    /// take a worker thread down — and a rejected request leaves every
    /// counter and the cache untouched (see [`ServeState::try_distance`]).
    pub fn execute(&self, req: &Request, batch_buf: &mut Vec<Distance>) -> Response {
        match req {
            Request::Distance(s, t) => match self.try_distance(*s, *t) {
                Err(msg) => Response::Error(msg),
                Ok(d) => Response::Distance(d),
            },
            Request::OneToMany { source, targets } => {
                match self.try_one_to_many_into(*source, targets, batch_buf) {
                    Err(msg) => Response::Error(msg),
                    Ok(()) => Response::Distances(batch_buf.clone()),
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
        }
    }
}

/// Executes one decoded request and writes the encoded response to `w` —
/// the single request-execution path shared by the blocking handler and the
/// epoll reactor, so both models validate, count, cache and stream batched
/// answers identically. Returns `true` when the request was `Shutdown`: the
/// acknowledgement is written (and for the blocking model flushed) *before*
/// the shutdown flag is raised, so the drain cannot close the socket under
/// a response that was never sent.
pub(crate) fn respond<W: Write>(
    state: &ServeState,
    req: &Request,
    w: &mut W,
    batch_buf: &mut Vec<Distance>,
) -> io::Result<bool> {
    if matches!(req, Request::Shutdown) {
        write_response(w, &Response::ShuttingDown)?;
        state.request_shutdown();
        return Ok(true);
    }
    // Batched answers stream straight from the reused buffer; routing them
    // through an owned `Response` would clone the whole row per request.
    if let Request::OneToMany { source, targets } = req {
        match state.try_one_to_many_into(*source, targets, batch_buf) {
            Err(msg) => write_response(w, &Response::Error(msg))?,
            Ok(()) => crate::protocol::write_distances(w, batch_buf)?,
        }
        return Ok(false);
    }
    let resp = state.execute(req, batch_buf);
    write_response(w, &resp)?;
    Ok(false)
}

/// A running server: the bound address plus the accept-loop handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    accept_loop: Option<JoinHandle<io::Result<()>>>,
    state: Arc<ServeState>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters, shutdown flag).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Blocks until the serve loop exits (i.e. until some client sends
    /// `Shutdown`), then reports the accept loop's result.
    pub fn wait(mut self) -> io::Result<()> {
        let handle = self
            .accept_loop
            .take()
            .expect("wait consumes the only handle");
        handle.join().expect("accept loop panicked")
    }

    /// Requests shutdown from this side and waits for the drain.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.request_shutdown();
        self.wait()
    }
}

/// Binds `addr` and serves it with the blocking thread-per-connection model
/// until a `Shutdown` request arrives — shorthand for [`serve_with_model`]
/// with [`ServeModel::Threads`].
pub fn serve(state: Arc<ServeState>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_with_model(state, addr, ServeModel::Threads)
}

/// Binds `addr` and runs the chosen connection model in a background thread
/// until a `Shutdown` request arrives.
///
/// Under [`ServeModel::Threads`] each accepted connection gets its own
/// handler thread with its own reused batch buffer; at most `state.threads`
/// connections are served at once — later ones queue in the listen backlog,
/// preserving strict bounds on worker memory. Under [`ServeModel::Epoll`]
/// (falling back to `Threads` off Linux) `state.threads` reactor threads
/// multiplex any number of connections over non-blocking sockets. Returns
/// once the listener is bound, so the caller can read the resolved address
/// immediately (pass port 0 for an ephemeral port).
pub fn serve_with_model(
    state: Arc<ServeState>,
    addr: impl ToSocketAddrs,
    model: ServeModel,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Both models poll the shutdown flag instead of blocking in `accept`:
    // the flag alone stops the loop, with no loopback nudge that could miss.
    listener.set_nonblocking(true)?;
    state
        .bound_addr
        .set(bound)
        .map_err(|_| io::Error::new(io::ErrorKind::AddrInUse, "state already serves a listener"))?;
    let loop_state = Arc::clone(&state);
    let accept_loop = std::thread::Builder::new()
        .name("hc2l-serve-accept".into())
        .spawn(move || match model.effective() {
            ServeModel::Threads => accept_loop(listener, loop_state),
            #[cfg(target_os = "linux")]
            ServeModel::Epoll => crate::reactor::run(listener, loop_state),
            #[cfg(not(target_os = "linux"))]
            ServeModel::Epoll => unreachable!("ServeModel::effective falls back off Linux"),
        })?;
    Ok(ServerHandle {
        addr: bound,
        accept_loop: Some(accept_loop),
        state,
    })
}

/// How long the non-blocking accept loop sleeps when the backlog is empty —
/// the upper bound on how stale its view of the shutdown flag can be.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(2);

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    // Active-handler cap: a plain counter, checked before spawning. The
    // listener is non-blocking: an empty backlog sleeps `ACCEPT_POLL` and
    // re-checks the shutdown flag, so a `Shutdown` requested while a client
    // holds an idle connection (or a half-written frame) cannot leave this
    // loop blocked in `accept` — the race the old loopback-connect nudge
    // papered over.
    let active = Arc::new(AtomicUsize::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Live connection streams, so the drain below can unblock handler
    // threads parked in a blocking read (an idle client must not wedge
    // shutdown). Each handler removes its own entry when it exits, so the
    // registry holds only open connections.
    let conns: Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let mut next_conn_id: u64 = 0;
    let mut result: io::Result<()> = Ok(());
    loop {
        if state.is_shutting_down() {
            break;
        }
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            // Empty backlog: sleep briefly and re-check the shutdown flag.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient per-connection failures must not kill the listener.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) =>
            {
                continue
            }
            // Anything else (fd exhaustion, listener teardown) ends the
            // loop — but through the drain below, never abandoning live
            // handler threads.
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if state.is_shutting_down() {
            break;
        }
        // Worker cap: park excess connections until a slot frees up. The
        // cap is *soft* — after a bounded wait the connection is served
        // anyway, so a daemon whose slots are all held by idle clients
        // still makes progress (and can still be told to shut down over
        // the wire).
        let cap_deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while active.load(Ordering::Acquire) >= state.threads
            && std::time::Instant::now() < cap_deadline
        {
            if state.is_shutting_down() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        if state.is_shutting_down() {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        // Accepted sockets must not inherit the listener's non-blocking
        // mode: this model's handlers park in blocking reads by design.
        if stream.set_nonblocking(false).is_err() {
            drop(stream);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        match stream.try_clone() {
            Ok(clone) => conns.lock().unwrap().insert(conn_id, clone),
            // An unregistered connection could not be unblocked by the
            // shutdown drain and would wedge the final join; refuse it
            // (the peer sees a reset and can retry) rather than serve it
            // untracked.
            Err(_) => {
                drop(stream);
                continue;
            }
        };
        active.fetch_add(1, Ordering::AcqRel);
        let conn_state = Arc::clone(&state);
        let conn_active = Arc::clone(&active);
        let conn_registry = Arc::clone(&conns);
        let spawned = std::thread::Builder::new()
            .name("hc2l-serve-worker".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_state);
                conn_registry.lock().unwrap().remove(&conn_id);
                conn_active.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(e) => {
                // The closure (and its stream) never ran: undo the
                // bookkeeping and end the loop through the drain.
                conns.lock().unwrap().remove(&conn_id);
                active.fetch_sub(1, Ordering::AcqRel);
                result = Err(e);
                break;
            }
        }
    }
    // Drain: close both halves of every still-open connection so handlers
    // parked in a blocking read observe EOF and exit, then join them all —
    // on the error paths too, so no handler thread is ever abandoned.
    for (_, stream) in conns.lock().unwrap().drain() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for h in handlers {
        let _ = h.join();
    }
    result
}

/// Serves one connection until the peer hangs up, a protocol error occurs,
/// or shutdown is requested. The batch buffer lives for the whole
/// connection, so steady-state one-to-many serving does no per-request
/// allocation beyond the response frame.
fn handle_connection(stream: TcpStream, state: &ServeState) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut batch_buf: Vec<Distance> = Vec::new();
    while let Some(req) = read_request(&mut reader)? {
        // `respond` acknowledges a Shutdown *before* raising the flag, so
        // the accept loop's drain cannot close this socket ahead of the
        // response reaching the peer.
        if respond(state, &req, &mut writer, &mut batch_buf)? {
            break;
        }
        if state.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_request;
    use hc2l_graph::toy::paper_figure1;
    use hc2l_oracle::OracleBuilder;

    fn test_state(cache: usize) -> Arc<ServeState> {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        Arc::new(ServeState::new(oracle, 4, cache))
    }

    fn models() -> &'static [ServeModel] {
        ServeModel::available()
    }

    fn ask(addr: SocketAddr, req: &Request) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, req).unwrap();
        crate::protocol::read_response(&mut reader)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn end_to_end_over_tcp() {
        for &model in models() {
            end_to_end_over_tcp_with(model);
        }
    }

    fn end_to_end_over_tcp_with(model: ServeModel) {
        let state = test_state(256);
        let expected = state.oracle().distance(2, 9);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();

        assert_eq!(
            ask(addr, &Request::Distance(2, 9)),
            Response::Distance(expected)
        );
        // A second ask hits the cache and agrees.
        assert_eq!(
            ask(addr, &Request::Distance(9, 2)),
            Response::Distance(expected)
        );

        let targets: Vec<Vertex> = (0..16).collect();
        let Response::Distances(row) = ask(
            addr,
            &Request::OneToMany {
                source: 3,
                targets: targets.clone(),
            },
        ) else {
            panic!("expected a Distances response");
        };
        let mut want = Vec::new();
        state.oracle().one_to_many_into(3, &targets, &mut want);
        assert_eq!(row, want);

        // Out-of-range queries error without killing the server.
        assert!(matches!(
            ask(addr, &Request::Distance(999, 0)),
            Response::Error(_)
        ));

        let Response::Stats(stats) = ask(addr, &Request::Stats) else {
            panic!("expected a Stats response");
        };
        assert_eq!(stats.method_tag, Method::Hl.tag());
        assert_eq!(stats.num_vertices, 16);
        assert_eq!(stats.distance_queries, 2, "{model}");
        assert_eq!(stats.one_to_many_queries, 1, "{model}");
        assert_eq!(stats.one_to_many_targets, 16, "{model}");
        assert!(stats.cache_hits >= 1, "{model}");

        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
    }

    #[test]
    fn shutdown_from_the_handle_side() {
        for &model in models() {
            let state = test_state(0);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            assert!(matches!(
                ask(addr, &Request::Distance(0, 5)),
                Response::Distance(_)
            ));
            server.shutdown().unwrap();
            assert!(state.is_shutting_down());
        }
    }

    #[test]
    fn concurrent_clients_get_exact_answers() {
        for &model in models() {
            concurrent_clients_get_exact_answers_with(model);
        }
    }

    fn concurrent_clients_get_exact_answers_with(model: ServeModel) {
        let state = test_state(1024);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        let mut expected = [[0u64; 16]; 16];
        for s in 0..16u32 {
            for t in 0..16u32 {
                expected[s as usize][t as usize] = state.oracle().distance(s, t);
            }
        }
        let clients: Vec<_> = (0..8u32)
            .map(|id| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    let mut got = Vec::new();
                    for i in 0..200u32 {
                        let (s, t) = ((i + id) % 16, (i * 7) % 16);
                        write_request(&mut writer, &Request::Distance(s, t)).unwrap();
                        let Some(Response::Distance(d)) =
                            crate::protocol::read_response(&mut reader).unwrap()
                        else {
                            panic!("expected a distance");
                        };
                        got.push((s, t, d));
                    }
                    got
                })
            })
            .collect();
        for c in clients {
            for (s, t, d) in c.join().unwrap() {
                assert_eq!(d, expected[s as usize][t as usize]);
            }
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_even_with_an_idle_connection() {
        for &model in models() {
            shutdown_drains_with_stuck_client(model, &[]);
        }
    }

    #[test]
    fn shutdown_drains_even_with_a_half_written_frame() {
        // A client that wrote part of a frame — here 2 of the 4 length
        // prefix bytes — and then went quiet is the other face of the
        // idle-connection shutdown race: the handler (or reactor) holds a
        // partial decode and must still be torn down promptly.
        for &model in models() {
            shutdown_drains_with_stuck_client(model, &[0x07, 0x00]);
        }
    }

    /// Opens a connection, writes `partial` (possibly nothing) without ever
    /// completing a frame, requests shutdown from the handle side, and
    /// asserts the daemon exits within a bounded time.
    fn shutdown_drains_with_stuck_client(model: ServeModel, partial: &[u8]) {
        use std::io::Write as _;
        let state = test_state(0);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        let mut stuck = TcpStream::connect(addr).unwrap();
        if !partial.is_empty() {
            stuck.write_all(partial).unwrap();
            stuck.flush().unwrap();
        }
        // Make sure the stuck connection is accepted and being served
        // before shutdown is requested.
        assert!(matches!(
            ask(addr, &Request::Distance(1, 2)),
            Response::Distance(_)
        ));
        let done = std::thread::spawn(move || server.shutdown());
        // The drain must finish promptly despite the stuck connection.
        let start = std::time::Instant::now();
        done.join().unwrap().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "{model} drain took {:?}",
            start.elapsed()
        );
        drop(stuck);
    }

    #[test]
    fn slow_writers_decode_correctly_on_both_models() {
        // A valid Distance and OneToMany frame delivered one byte at a
        // time (every flush is its own TCP segment thanks to nodelay) must
        // decode identically to whole-frame delivery on both models.
        use std::io::Write as _;
        for &model in models() {
            let state = test_state(0);
            let expected_d = state.oracle().distance(2, 9);
            let targets: Vec<Vertex> = (0..8).collect();
            let mut expected_row = Vec::new();
            state
                .oracle()
                .one_to_many_into(3, &targets, &mut expected_row);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();

            let stream = TcpStream::connect(server.addr()).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut frames = Vec::new();
            write_request(&mut frames, &Request::Distance(2, 9)).unwrap();
            write_request(
                &mut frames,
                &Request::OneToMany {
                    source: 3,
                    targets: targets.clone(),
                },
            )
            .unwrap();
            for b in &frames {
                writer.write_all(std::slice::from_ref(b)).unwrap();
                writer.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distance(expected_d)),
                "{model}"
            );
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distances(expected_row.clone())),
                "{model}"
            );
            drop((reader, writer));
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn backpressured_pipelined_requests_are_all_answered() {
        // Regression: a client that pipelines a batch whose response
        // (8 bytes x 150k targets = 1.2MB) exceeds the reactor's 1MB
        // backpressure high-water mark, plus a point query, *before reading
        // anything*, must still receive every answer once it starts
        // reading — the paused frames must resume when the write buffer
        // drains, not strand in the decoder. (The threads model has no
        // backpressure path; it simply blocks in write until the client
        // reads, so it covers the same contract trivially.)
        use std::io::Write as _;
        for &model in models() {
            let state = test_state(0);
            let expected_row_val = state.oracle().distance(0, 1);
            let expected_d = state.oracle().distance(2, 9);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();

            let stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(20)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let targets = vec![1u32; 150_000];
            write_request(&mut writer, &Request::OneToMany { source: 0, targets }).unwrap();
            write_request(&mut writer, &Request::Distance(2, 9)).unwrap();
            writer.flush().unwrap();
            // Give the server time to execute the batch, hit the high-water
            // mark and pause, with both frames fully delivered.
            std::thread::sleep(std::time::Duration::from_millis(200));

            let mut reader = BufReader::new(stream);
            let Some(Response::Distances(ds)) =
                crate::protocol::read_response(&mut reader).unwrap()
            else {
                panic!("{model}: expected the batched response");
            };
            assert_eq!(ds.len(), 150_000, "{model}");
            assert!(ds.iter().all(|&d| d == expected_row_val), "{model}");
            let Some(Response::Distance(d)) = crate::protocol::read_response(&mut reader).unwrap()
            else {
                panic!("{model}: the pipelined point query was stranded");
            };
            assert_eq!(d, expected_d, "{model}");
            drop((reader, writer));
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn rejected_requests_leave_stats_and_cache_untouched() {
        // Out-of-range queries must not count as served work nor seed the
        // cache with garbage keys — `Stats` and `cache_hit_rate` stay
        // honest. Checked through `execute` and over the wire on both
        // models.
        let state = test_state(256);
        let mut buf = Vec::new();
        assert!(matches!(
            state.execute(&Request::Distance(999, 0), &mut buf),
            Response::Error(_)
        ));
        assert!(matches!(
            state.execute(
                &Request::OneToMany {
                    source: 0,
                    targets: vec![1, 999],
                },
                &mut buf
            ),
            Response::Error(_)
        ));
        assert!(matches!(
            state.execute(
                &Request::OneToMany {
                    source: 999,
                    targets: vec![1],
                },
                &mut buf
            ),
            Response::Error(_)
        ));
        let stats = state.stats();
        assert_eq!(stats.distance_queries, 0);
        assert_eq!(stats.one_to_many_queries, 0);
        assert_eq!(stats.one_to_many_targets, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.cache_len, 0);
        assert_eq!(state.cache().stats().len, 0);

        for &model in models() {
            let state = test_state(256);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            assert!(matches!(
                ask(addr, &Request::Distance(999, 0)),
                Response::Error(_)
            ));
            assert!(matches!(
                ask(
                    addr,
                    &Request::OneToMany {
                        source: 0,
                        targets: vec![999],
                    }
                ),
                Response::Error(_)
            ));
            let Response::Stats(stats) = ask(addr, &Request::Stats) else {
                panic!("expected a Stats response");
            };
            assert_eq!(stats.distance_queries, 0, "{model}");
            assert_eq!(stats.one_to_many_queries, 0, "{model}");
            assert_eq!(stats.cache_hits + stats.cache_misses, 0, "{model}");
            assert_eq!(stats.cache_len, 0, "{model}");
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn saturated_daemon_still_accepts_a_shutdown_client() {
        // All worker slots held by an idle client: the soft cap must let a
        // late client in so a wire-protocol Shutdown can still land.
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        let state = Arc::new(ServeState::new(oracle, 1, 0)); // one slot
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        // Occupy the only slot with a connection that stays idle.
        let idle = TcpStream::connect(addr).unwrap();
        // Give the accept loop time to hand the idle connection to a worker.
        std::thread::sleep(std::time::Duration::from_millis(100));
        // A second client must still get served (after the soft-cap wait)
        // and be able to shut the daemon down.
        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
        drop(idle);
    }

    #[test]
    fn oversized_batches_are_rejected_not_framed() {
        // A request whose *response* would exceed the frame cap must fail
        // as a typed Error on the server, not as a malformed frame on the
        // client (u64 distances are twice the width of u32 targets).
        let state = test_state(0);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![0; crate::protocol::MAX_ONE_TO_MANY_TARGETS + 1],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Error(ref msg) if msg.contains("cap")));
        // A cap-sized batch of valid targets still answers (length checks
        // happen before vertex-range checks).
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1; 100],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 100));
    }

    #[test]
    fn execute_bypasses_cache_for_batches_but_counts_them() {
        let state = test_state(64);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1, 2, 3],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 3));
        let stats = state.stats();
        assert_eq!(stats.one_to_many_queries, 1);
        assert_eq!(stats.one_to_many_targets, 3);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }
}
