//! The serve loop: shared state, two interchangeable TCP connection models
//! (blocking thread-per-connection and an event-driven epoll reactor), and
//! in-process request execution.
//!
//! One [`ServeState`] — index, result cache, counters — is built per served
//! index and shared behind an `Arc`: the daemon's connection handlers, the
//! `--bench` self-drive workers and the in-process tests all execute
//! requests through the same [`ServeState::distance`] /
//! [`ServeState::one_to_many_into`] entry points, so every path is measured
//! and cached identically. The query path takes **no blocking locks**: the
//! oracle lives in an epoch-tagged generation behind an `RwLock<Arc<_>>`
//! whose read side is only ever held for one `Arc` clone, counters are
//! relaxed atomics, and only a cache probe touches a (sharded) mutex.
//!
//! **Live weight updates** ([`ServeState::try_apply_updates`]): a state
//! built with [`ServeState::with_updates`] additionally owns the underlying
//! graph plus an updatable [`Oracle`]; an `UpdateWeights` batch is absorbed
//! there (incrementally for CH / HC2L, by rebuild otherwise — see
//! `hc2l_oracle::DistanceOracle::apply_updates`) and the refreshed index is
//! published as a **new generation** with one brief write lock. In-flight
//! queries hold `Arc`s to the old generation and finish on it — they never
//! block on an update, and never observe a half-applied batch. Cache
//! entries are epoch-tagged, so the swap invalidates the whole cache in
//! O(1) without a sweep.
//!
//! [`serve`] keeps the original blocking model; [`serve_with_model`] selects
//! a [`ServeModel`] — the epoll reactor (`crate::reactor`) holds hundreds of
//! mostly-idle connections on a handful of threads, where the blocking model
//! would need one OS thread per client.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hc2l_graph::{failpoints, Distance, Graph, Vertex};
use hc2l_oracle::{DistanceOracle, Method, Oracle, SharedOracle, WeightUpdate};

use hc2l_obs::clock;

use crate::cache::QueryCache;
use crate::lockfree::EpochMirror;
use crate::metrics::OpLatencies;
use crate::protocol::{
    write_response, FrameDecoder, Request, Response, ServerStats, UpdateOutcome, MAX_UPDATE_BATCH,
};

/// How the serve loop multiplexes client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeModel {
    /// One blocking OS thread per connection (buffered reads and writes) —
    /// the portable fallback, right up to a few dozen concurrent clients.
    Threads,
    /// Event-driven reactor: N threads each own an epoll instance and a
    /// per-connection state table with incremental frame decoding, so
    /// hundreds of mostly-idle connections cost no threads and no blocked
    /// stacks. Linux-only; [`ServeModel::effective`] falls back to
    /// [`ServeModel::Threads`] elsewhere.
    Epoll,
}

impl ServeModel {
    /// The model that will actually run on this platform: `Epoll` degrades
    /// to `Threads` off Linux (epoll is a Linux syscall family).
    pub fn effective(self) -> ServeModel {
        if cfg!(target_os = "linux") {
            self
        } else {
            ServeModel::Threads
        }
    }

    /// The platform default: the reactor where it exists, threads elsewhere.
    pub fn platform_default() -> ServeModel {
        ServeModel::Epoll.effective()
    }

    /// Every model that actually runs on this platform — what tests (and
    /// anything else wanting full coverage) iterate over.
    pub fn available() -> &'static [ServeModel] {
        if cfg!(target_os = "linux") {
            &[ServeModel::Threads, ServeModel::Epoll]
        } else {
            &[ServeModel::Threads]
        }
    }
}

impl std::str::FromStr for ServeModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(ServeModel::Threads),
            "epoll" => Ok(ServeModel::Epoll),
            other => Err(format!(
                "unknown connection model {other:?} (threads|epoll)"
            )),
        }
    }
}

impl std::fmt::Display for ServeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeModel::Threads => "threads",
            ServeModel::Epoll => "epoll",
        })
    }
}

/// Fault-tolerance knobs of a serve loop, honoured by both connection
/// models. [`ServeConfig::default`] is what the daemon runs with unless
/// flags override it; tests tighten the budgets to milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Close a connection that has been idle — at a frame boundary, with
    /// nothing buffered — longer than this. `None` never reaps idle peers.
    pub idle_timeout: Option<Duration>,
    /// Close a connection stalled *mid-request* longer than this: a partial
    /// frame trickling in (slow loris) or a peer not draining its response.
    /// This is the per-request deadline the server enforces — bounded time
    /// from first request byte to response flush, measured as time since
    /// the connection last made progress. `None` never reaps stalled peers.
    pub stall_timeout: Option<Duration>,
    /// How long shutdown waits for live connections to drain before closing
    /// them (`--drain-secs`; the default is 3 seconds).
    pub drain: Duration,
    /// Queries (`Distance` / `OneToMany`) allowed to execute concurrently
    /// before further ones are shed with [`Response::Overloaded`];
    /// 0 disables query admission control. Update admission is separate
    /// and always on: one batch absorbs at a time, a second is shed.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            idle_timeout: Some(Duration::from_secs(300)),
            stall_timeout: Some(Duration::from_secs(30)),
            drain: Duration::from_secs(3),
            max_inflight: 0,
        }
    }
}

/// Any index the serve loop can answer from: a zero-copy mmap-backed view
/// ([`SharedOracle`], the daemon's path) or an owned in-memory index
/// ([`Oracle`], the path tests and embedded users take after `build`/`load`).
#[derive(Debug, Clone)]
pub enum ServedOracle {
    /// Zero-copy view over a loaded container (see `OracleBuilder::open`).
    Shared(SharedOracle),
    /// Owned index (built in-process or decoded by `OracleBuilder::load`);
    /// boxed so the rarely-held large variant does not inflate the enum.
    Built(Box<Oracle>),
}

impl ServedOracle {
    /// The served method.
    pub fn method(&self) -> Method {
        match self {
            ServedOracle::Shared(o) => o.method(),
            ServedOracle::Built(o) => o.method(),
        }
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.num_vertices(),
            ServedOracle::Built(o) => o.num_vertices(),
        }
    }

    /// Container-file footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        match self {
            ServedOracle::Shared(o) => o.index_bytes(),
            ServedOracle::Built(o) => o.index_bytes(),
        }
    }

    /// Whether answers come straight out of a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            ServedOracle::Shared(o) => o.is_mapped(),
            ServedOracle::Built(_) => false,
        }
    }

    /// Uncounted, uncached point-to-point query straight at the index
    /// (callers wanting the serve path go through [`ServeState::distance`]).
    #[inline]
    pub fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        match self {
            ServedOracle::Shared(o) => o.distance(s, t),
            ServedOracle::Built(o) => o.distance(s, t),
        }
    }

    /// Uncounted batched query straight at the index.
    #[inline]
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        match self {
            ServedOracle::Shared(o) => o.one_to_many_into(s, targets, out),
            ServedOracle::Built(o) => o.one_to_many_into(s, targets, out),
        }
    }
}

impl From<SharedOracle> for ServedOracle {
    fn from(o: SharedOracle) -> Self {
        ServedOracle::Shared(o)
    }
}

impl From<Oracle> for ServedOracle {
    fn from(o: Oracle) -> Self {
        ServedOracle::Built(Box::new(o))
    }
}

/// One immutable index generation: the oracle snapshot being served plus
/// the epoch that tags its cache entries. Queries grab an `Arc<Generation>`
/// and answer entirely on it, so a concurrent weight update (which installs
/// a *new* generation) never blocks them or changes answers mid-request.
/// Derefs to [`ServedOracle`], so `state.oracle().distance(s, t)` reads the
/// same as before generations existed.
#[derive(Debug)]
pub struct Generation {
    oracle: ServedOracle,
    epoch: u64,
}

impl Generation {
    /// The index generation number: 0 at build, +1 per absorbed update
    /// batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::ops::Deref for Generation {
    type Target = ServedOracle;

    fn deref(&self) -> &ServedOracle {
        &self.oracle
    }
}

/// The updatable source of truth behind a [`ServeState::with_updates`]
/// daemon: the live graph and an owned oracle that absorbs weight batches
/// (incrementally where the backend supports it). Guarded by a mutex so
/// concurrent batches serialise; queries never touch it.
#[derive(Debug)]
struct UpdateEngine {
    graph: Graph,
    oracle: Oracle,
}

/// Why [`ServeState::try_apply_updates`] refused a batch — the two cases
/// map to the two terminal protocol responses with different retry
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// Another batch holds the update engine right now. Nothing of this
    /// batch was applied; retrying the identical batch after a backoff is
    /// safe. Maps to [`Response::Overloaded`].
    Overloaded(String),
    /// The batch cannot be applied (static index, oversized batch, engine
    /// disabled by an earlier fault). Retrying unchanged will fail again.
    /// Maps to [`Response::Error`].
    Rejected(String),
}

impl UpdateError {
    /// The wire response this error is reported as.
    pub fn into_response(self) -> Response {
        match self {
            UpdateError::Overloaded(msg) => Response::Overloaded(msg),
            UpdateError::Rejected(msg) => Response::Error(msg),
        }
    }
}

/// Everything a worker needs to answer queries: the current index
/// generation, the sharded result cache, and the served/shutdown counters.
#[derive(Debug)]
pub struct ServeState {
    /// Current generation; the write lock is held only for the pointer swap
    /// at the end of an update, the read lock only for an `Arc` clone.
    generation: RwLock<Arc<Generation>>,
    /// Present when the daemon owns the graph and can absorb updates.
    engine: Option<Mutex<UpdateEngine>>,
    cache: QueryCache,
    /// Mirror of the published generation's epoch, so the cache-hit fast
    /// path probes without touching the generation lock (and without the
    /// `Arc` clone/drop pair). Stored *before* the generation swap: a
    /// racing query can at worst miss on the not-yet-published epoch and
    /// recompute — it can never serve a stale generation's entry as fresh.
    /// The publish/load protocol lives in [`crate::lockfree::EpochMirror`],
    /// where the model-check suite exercises it under the checker.
    cache_epoch: EpochMirror,
    /// Per-opcode latency histograms, recorded identically by both
    /// connection models (everything funnels through these entry points).
    latency: OpLatencies,
    threads: usize,
    config: ServeConfig,
    /// Distance/one-to-many request counters only advance when latency
    /// recording is *off*; with recording on, the histogram counts carry
    /// the tally and [`ServeState::stats`] folds the two together — the
    /// recorded hot path pays for its clock reads by dropping this
    /// `fetch_add`.
    distance_queries: AtomicU64,
    one_to_many_queries: AtomicU64,
    one_to_many_targets: AtomicU64,
    update_batches: AtomicU64,
    /// Queries currently executing, for [`ServeConfig::max_inflight`]
    /// admission.
    inflight: AtomicUsize,
    connections_accepted: AtomicU64,
    connections_reaped: AtomicU64,
    panics_caught: AtomicU64,
    overload_rejections: AtomicU64,
    write_errors: AtomicU64,
    /// Raised when an update batch panicked mid-absorb: the engine may be
    /// mid-mutation, so further updates are refused (queries keep answering
    /// on the last *published* generation, which the failed batch never
    /// touched).
    engine_failed: AtomicBool,
    shutdown: AtomicBool,
    /// Set by [`serve`] once the listener is bound; guards against two
    /// serve loops sharing one state's shutdown flag.
    bound_addr: OnceLock<SocketAddr>,
}

impl ServeState {
    /// Wraps an oracle with a result cache of `cache_capacity` entries
    /// (0 disables caching) for a serve loop of `threads` workers. The
    /// index is served as-is: `UpdateWeights` requests are answered with a
    /// typed error (use [`ServeState::with_updates`] to enable them).
    pub fn new(oracle: impl Into<ServedOracle>, threads: usize, cache_capacity: usize) -> Self {
        ServeState::build(oracle.into(), None, threads, cache_capacity)
    }

    /// Like [`ServeState::new`], but keeps `graph` and the owned `oracle`
    /// as the updatable source of truth: `UpdateWeights` batches are
    /// absorbed there and published as new generations while queries keep
    /// answering on the old one.
    pub fn with_updates(
        graph: Graph,
        oracle: Oracle,
        threads: usize,
        cache_capacity: usize,
    ) -> Self {
        let served = ServedOracle::from(oracle.clone());
        ServeState::build(
            served,
            Some(Mutex::new(UpdateEngine { graph, oracle })),
            threads,
            cache_capacity,
        )
    }

    fn build(
        oracle: ServedOracle,
        engine: Option<Mutex<UpdateEngine>>,
        threads: usize,
        cache_capacity: usize,
    ) -> Self {
        // Calibrate the TSC-to-nanoseconds rate up front so the first
        // recorded request does not absorb the ~4ms calibration spin.
        clock::calibrate();
        ServeState {
            generation: RwLock::new(Arc::new(Generation { oracle, epoch: 0 })),
            engine,
            cache: QueryCache::new(cache_capacity, QueryCache::DEFAULT_SHARDS),
            cache_epoch: EpochMirror::new(0),
            latency: OpLatencies::enabled(),
            threads: threads.max(1),
            config: ServeConfig::default(),
            distance_queries: AtomicU64::new(0),
            one_to_many_queries: AtomicU64::new(0),
            one_to_many_targets: AtomicU64::new(0),
            update_batches: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_reaped: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            engine_failed: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            bound_addr: OnceLock::new(),
        }
    }

    /// Replaces the fault-tolerance configuration (builder style, before the
    /// state is shared): `ServeState::new(..).with_config(cfg)`.
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// The fault-tolerance configuration this state serves under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The currently served generation (an `Arc` snapshot: stable for the
    /// caller even while updates swap in newer generations).
    ///
    /// Lock poisoning is recovered, not propagated: the critical sections
    /// on this lock are a lone `Arc` clone / pointer store, which cannot be
    /// observed half-done, so a panic elsewhere in a past holder must not
    /// cascade into every future query.
    pub fn oracle(&self) -> Arc<Generation> {
        self.generation
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The current index generation number.
    pub fn epoch(&self) -> u64 {
        self.generation
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .epoch
    }

    /// Whether this state can absorb `UpdateWeights` batches.
    pub fn supports_updates(&self) -> bool {
        self.engine.is_some()
    }

    /// Absorbs a weight-update batch and publishes the re-weighted index as
    /// a new generation. Queries keep answering on the old generation
    /// throughout and switch at the pointer swap.
    ///
    /// Admission control: one batch absorbs at a time. A batch arriving
    /// while another holds the engine is shed with
    /// [`UpdateError::Overloaded`] instead of queueing on the mutex — the
    /// client retries with backoff, and the daemon never accumulates a
    /// convoy of blocked update workers. [`UpdateError::Rejected`] (static
    /// index, oversized batch, disabled engine) leaves the served index
    /// untouched, as does a batch that panics mid-absorb: the panic is
    /// caught here, the engine is disabled, and the published generation —
    /// which the failed batch never touched — keeps answering exactly.
    pub fn try_apply_updates(
        &self,
        updates: &[WeightUpdate],
    ) -> Result<UpdateOutcome, UpdateError> {
        let t0 = self.latency.start();
        let Some(engine) = &self.engine else {
            return Err(UpdateError::Rejected(
                "this daemon serves a static index snapshot and cannot apply weight updates \
                 (start it from an owned graph, e.g. --grid, to enable them)"
                    .into(),
            ));
        };
        if updates.len() > MAX_UPDATE_BATCH {
            return Err(UpdateError::Rejected(format!(
                "batch of {} updates exceeds the {}-update frame cap; split it",
                updates.len(),
                MAX_UPDATE_BATCH
            )));
        }
        let mut guard = match engine.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.overload_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(UpdateError::Overloaded(
                    "an update batch is already being absorbed; retry with backoff".into(),
                ));
            }
            // A panicking absorb is caught below before it can poison the
            // mutex, but recover defensively: the engine-failed flag is
            // what actually gates a damaged engine.
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        if self.engine_failed.load(Ordering::Acquire) {
            return Err(UpdateError::Rejected(
                "the update engine was disabled by an earlier mid-apply fault; queries keep \
                 answering on the last published generation (restart the daemon to re-enable \
                 updates)"
                    .into(),
            ));
        }
        // Panic isolation: a backend that dies mid-absorb (or an injected
        // `serve.update.absorb` fault) must degrade to a typed error, not
        // take the worker — and with it possibly the daemon — down. The
        // generation swap below only happens on success, so a failed batch
        // is never partially visible to queries.
        let absorbed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            failpoints::act("serve.update.absorb");
            let UpdateEngine { graph, oracle } = &mut *guard;
            let report = oracle.apply_updates(graph, updates);
            let served = ServedOracle::from(oracle.clone());
            (report, served)
        }));
        let (report, served) = match absorbed {
            Ok(pair) => pair,
            Err(_) => {
                self.engine_failed.store(true, Ordering::Release);
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                hc2l_obs::error!(
                    "update batch panicked mid-apply; engine disabled, \
                     still serving the last published generation"
                );
                return Err(UpdateError::Rejected(
                    "update batch failed mid-apply (panic caught): no part of the batch is \
                     visible to queries, and further updates are disabled until restart"
                        .into(),
                ));
            }
        };
        // Publish: one brief write lock for the pointer swap. Readers that
        // cloned the old Arc finish on the old generation; every query
        // *started* after this point sees the new one. Poisoning on this
        // lock is recovered like on the read side — the store is atomic
        // from any observer's point of view.
        let epoch = {
            let mut slot = self.generation.write().unwrap_or_else(|p| p.into_inner());
            let epoch = slot.epoch + 1;
            // Advance the probe mirror *before* the swap is visible: see
            // the `cache_epoch` field docs for why this order is the safe
            // side of the race.
            self.cache_epoch.publish(epoch);
            *slot = Arc::new(Generation {
                oracle: served,
                epoch,
            });
            epoch
        };
        drop(guard);
        self.update_batches.fetch_add(1, Ordering::Relaxed);
        if let Some(t0) = t0 {
            self.latency.update_weights.record(clock::ns_since(t0));
        }
        hc2l_obs::info!(
            "published epoch {epoch}: {} updates applied, {} rejected, via {} in {}us",
            report.applied,
            report.rejected,
            report.strategy,
            report.micros
        );
        Ok(UpdateOutcome {
            strategy_tag: report.strategy.tag(),
            applied: report.applied as u64,
            rejected: report.rejected as u64,
            micros: report.micros,
            epoch,
        })
    }

    /// Configured worker cap (thread model) / reactor count (epoll model).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The result cache (for inspection; workers go through
    /// [`ServeState::distance`]).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers a point-to-point query through the cache, counting it.
    ///
    /// The in-process hot path: vertices are trusted to be in range (the
    /// throughput driver and embedded users own their workloads). Anything
    /// arriving over the wire goes through [`ServeState::try_distance`],
    /// which validates *before* counting or caching.
    #[inline]
    pub fn distance(&self, s: Vertex, t: Vertex) -> Distance {
        let t0 = self.latency.start();
        // Probe with the epoch *mirror* instead of grabbing the generation:
        // a cache hit then skips the generation read lock and the `Arc`
        // clone/drop pair entirely, which pays for the two clock reads
        // when recording is on. The mirror advances before the generation
        // swap, so the race goes the safe way — a fresh epoch that misses
        // and recomputes, never a stale entry served as current.
        let epoch = self.cache_epoch.load();
        if let Some(d) = self.cache.get_at(s, t, epoch) {
            match t0 {
                Some(t0) => self.latency.distance_hit.record(clock::ns_since(t0)),
                None => {
                    self.distance_queries.fetch_add(1, Ordering::Relaxed);
                }
            }
            return d;
        }
        // One generation snapshot for compute and insert: the cache entry
        // is tagged with the epoch it was *computed* against, so a racing
        // generation swap can at worst waste this insert, never poison the
        // new generation.
        let generation = self.oracle();
        let d = generation.distance(s, t);
        self.cache.insert_at(s, t, d, generation.epoch);
        match t0 {
            Some(t0) => self.latency.distance_miss.record(clock::ns_since(t0)),
            None => {
                self.distance_queries.fetch_add(1, Ordering::Relaxed);
            }
        }
        d
    }

    /// Answers a batched one-to-many query into a caller-provided buffer,
    /// counting it. Batches bypass the point cache: the batched kernels
    /// amortise the per-source work already, and polluting the LRU with
    /// whole rows would evict the point working set.
    pub fn one_to_many_into(&self, s: Vertex, targets: &[Vertex], out: &mut Vec<Distance>) {
        let t0 = self.latency.start();
        self.one_to_many_targets
            .fetch_add(targets.len() as u64, Ordering::Relaxed);
        self.oracle().one_to_many_into(s, targets, out);
        match t0 {
            Some(t0) => self.latency.one_to_many.record(clock::ns_since(t0)),
            None => {
                self.one_to_many_queries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Requests the serve loop to stop accepting and drain.
    ///
    /// Both connection models poll this flag on a bounded interval (the
    /// thread model's accept is non-blocking, the reactor's `epoll_wait`
    /// carries a timeout), so raising it is all that's needed — the old
    /// loopback-connect "nudge" is gone. The nudge was a shutdown race of
    /// its own: it silently never arrived when the listener was bound to a
    /// non-loopback or wildcard address, leaving `accept` blocked forever
    /// with the flag already set.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Counter snapshot in wire form. The query totals fold the plain
    /// counters (advanced only while latency recording is off) with the
    /// histogram counts (advanced while it is on), so toggling recording
    /// mid-run never loses a request.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.stats();
        let generation = self.oracle();
        let distance = self.latency.distance_merged();
        let one_to_many = self.latency.one_to_many.snapshot();
        let updates = self.latency.update_weights.snapshot();
        ServerStats {
            method_tag: generation.method().tag(),
            kernel_tag: hc2l_graph::active_kernel().tag(),
            num_vertices: generation.num_vertices() as u64,
            index_bytes: generation.index_bytes() as u64,
            threads: self.threads as u32,
            mapped: generation.is_mapped(),
            distance_queries: self.distance_queries.load(Ordering::Relaxed) + distance.count(),
            one_to_many_queries: self.one_to_many_queries.load(Ordering::Relaxed)
                + one_to_many.count(),
            one_to_many_targets: self.one_to_many_targets.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_len: cache.len as u64,
            cache_capacity: cache.capacity as u64,
            update_batches: self.update_batches.load(Ordering::Relaxed),
            epoch: generation.epoch(),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_reaped: self.connections_reaped.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            overload_rejections: self.overload_rejections.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            distance_p50_ns: distance.p50(),
            distance_p90_ns: distance.p90(),
            distance_p99_ns: distance.p99(),
            distance_p999_ns: distance.p999(),
            distance_max_ns: distance.max(),
            one_to_many_p50_ns: one_to_many.p50(),
            one_to_many_p99_ns: one_to_many.p99(),
            update_p50_ns: updates.p50(),
            update_p99_ns: updates.p99(),
        }
    }

    /// The per-opcode latency histograms (for snapshots; the hot paths
    /// record into them internally).
    pub fn latency(&self) -> &OpLatencies {
        &self.latency
    }

    /// Toggles hot-path latency recording. The bench uses this for its
    /// overhead A/B; requests served while recording is off still count in
    /// [`ServeState::stats`] via the plain counters.
    pub fn set_latency_recording(&self, on: bool) {
        self.latency.set_recording(on);
    }

    /// Renders the Prometheus text-exposition document a `Metrics` frame
    /// answers with.
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.stats(), &self.latency)
    }

    /// Records an accepted connection (both models report here, so `Stats`
    /// counts honestly regardless of `--model`).
    pub(crate) fn note_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed for blowing an idle or stall budget.
    pub(crate) fn note_reaped(&self) {
        self.connections_reaped.fetch_add(1, Ordering::Relaxed);
        hc2l_obs::debug!("connection reaped (idle or stall budget exceeded)");
    }

    /// Records a caught request-handler panic.
    pub(crate) fn note_panic(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
        hc2l_obs::error!("request handler panicked (caught); the daemon keeps serving");
    }

    /// Records a response write that failed because the peer was gone.
    pub(crate) fn note_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission control for the query path: reserves an in-flight slot, or
    /// sheds the request when [`ServeConfig::max_inflight`] slots are taken
    /// (the `Err` message becomes a [`Response::Overloaded`]). The returned
    /// guard releases the slot on drop — including during a panic unwind,
    /// so a caught handler panic can never leak capacity.
    pub(crate) fn admit_query(&self) -> Result<InflightGuard<'_>, String> {
        let cap = self.config.max_inflight;
        if cap == 0 {
            return Ok(InflightGuard { state: None });
        }
        let previous = self.inflight.fetch_add(1, Ordering::AcqRel);
        if previous >= cap {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.overload_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                "query path saturated ({cap} requests in flight); retry with backoff"
            ));
        }
        Ok(InflightGuard { state: Some(self) })
    }

    /// Validates a point-to-point request: both vertices in range.
    ///
    /// Validation runs **before** [`ServeState::distance`] so a rejected
    /// request never increments the served-query counter, never records a
    /// cache miss, and never inserts a garbage key into the result cache —
    /// `Stats` and `cache_hit_rate` count only queries that were actually
    /// answered.
    fn check_distance(&self, s: Vertex, t: Vertex) -> Result<(), String> {
        // Updates change weights, never topology, so the vertex count is
        // generation-invariant — any snapshot validates correctly.
        let n = self.oracle().num_vertices() as Vertex;
        if s >= n || t >= n {
            return Err(format!(
                "vertex out of range: ({s}, {t}) on a {n}-vertex index"
            ));
        }
        Ok(())
    }

    /// Answers a point-to-point query with validation first: out-of-range
    /// vertices produce `Err` without touching any counter or the cache.
    pub fn try_distance(&self, s: Vertex, t: Vertex) -> Result<Distance, String> {
        self.check_distance(s, t)?;
        Ok(self.distance(s, t))
    }

    /// Answers a batched query with validation first: a rejected batch
    /// touches no counter and no cache.
    pub fn try_one_to_many_into(
        &self,
        source: Vertex,
        targets: &[Vertex],
        out: &mut Vec<Distance>,
    ) -> Result<(), String> {
        self.check_one_to_many(source, targets)?;
        self.one_to_many_into(source, targets, out);
        Ok(())
    }

    /// Validates a one-to-many request: batch bounded by the
    /// response-frame cap, every vertex in range.
    fn check_one_to_many(&self, source: Vertex, targets: &[Vertex]) -> Result<(), String> {
        let n = self.oracle().num_vertices() as Vertex;
        if targets.len() > crate::protocol::MAX_ONE_TO_MANY_TARGETS {
            return Err(format!(
                "batch of {} targets exceeds the {}-target response-frame cap; split it",
                targets.len(),
                crate::protocol::MAX_ONE_TO_MANY_TARGETS
            ));
        }
        if source >= n {
            return Err(format!(
                "source {source} out of range on a {n}-vertex index"
            ));
        }
        if let Some(bad) = targets.iter().find(|&&t| t >= n) {
            return Err(format!("target {bad} out of range on a {n}-vertex index"));
        }
        Ok(())
    }

    /// Executes one request. Out-of-range vertices produce a
    /// [`Response::Error`], never a panic — one bad client query must not
    /// take a worker thread down — and a rejected request leaves every
    /// counter and the cache untouched (see [`ServeState::try_distance`]).
    pub fn execute(&self, req: &Request, batch_buf: &mut Vec<Distance>) -> Response {
        match req {
            Request::Distance(s, t) => match self.try_distance(*s, *t) {
                Err(msg) => Response::Error(msg),
                Ok(d) => Response::Distance(d),
            },
            Request::OneToMany { source, targets } => {
                match self.try_one_to_many_into(*source, targets, batch_buf) {
                    Err(msg) => Response::Error(msg),
                    Ok(()) => Response::Distances(batch_buf.clone()),
                }
            }
            Request::UpdateWeights(updates) => match self.try_apply_updates(updates) {
                Err(e) => e.into_response(),
                Ok(outcome) => Response::Updated(outcome),
            },
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => Response::Metrics(self.metrics_text()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
        }
    }
}

/// RAII in-flight-query slot from [`ServeState::admit_query`].
pub(crate) struct InflightGuard<'a> {
    state: Option<&'a ServeState>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state {
            state.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Executes one decoded request and writes the encoded response to `w` —
/// the single request-execution path shared by the blocking handler and the
/// epoll reactor, so both models validate, count, cache, admit and stream
/// batched answers identically. Returns `true` when the request was
/// `Shutdown`: the acknowledgement is written (and for the blocking model
/// flushed) *before* the shutdown flag is raised, so the drain cannot close
/// the socket under a response that was never sent.
///
/// Panic isolation lives here: execution always completes before the first
/// response byte is written (batched answers encode from the buffer only
/// after the kernel filled it), so a panicking handler is caught with the
/// stream still at a frame boundary and degrades to a typed
/// [`Response::Error`] — one poisoned request must not take the connection,
/// let alone the daemon, down.
pub(crate) fn respond<W: Write>(
    state: &ServeState,
    req: &Request,
    w: &mut W,
    batch_buf: &mut Vec<Distance>,
) -> io::Result<bool> {
    if matches!(req, Request::Shutdown) {
        write_response(w, &Response::ShuttingDown)?;
        state.request_shutdown();
        return Ok(true);
    }
    // Failpoint: a torn response frame. Execute for real, emit a prefix of
    // the encoded frame, then fail the connection — the chaos suite asserts
    // the peer decodes a typed error and the daemon keeps serving others.
    if let Some(failpoints::FailAction::Torn(n)) = failpoints::fired("serve.torn_response") {
        let mut frame = Vec::new();
        let resp = state.execute(req, batch_buf);
        write_response(&mut frame, &resp)?;
        w.write_all(&frame[..n.min(frame.len())])?;
        w.flush()?;
        return Err(failpoints::injected("serve.torn_response"));
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> io::Result<bool> {
        // Query admission: shed before executing anything. The guard
        // drops on every exit path, panic unwind included.
        let _inflight = match req {
            Request::Distance(..) | Request::OneToMany { .. } => match state.admit_query() {
                Ok(guard) => Some(guard),
                Err(shed) => {
                    write_response(w, &Response::Overloaded(shed))?;
                    return Ok(false);
                }
            },
            _ => None,
        };
        // Failpoint sits inside the admission window: injected delays and
        // panics model slow or crashing execution while holding a slot.
        failpoints::act("serve.request");
        // Batched answers stream straight from the reused buffer;
        // routing them through an owned `Response` would clone the
        // whole row per request.
        if let Request::OneToMany { source, targets } = req {
            match state.try_one_to_many_into(*source, targets, batch_buf) {
                Err(msg) => write_response(w, &Response::Error(msg))?,
                Ok(()) => crate::protocol::write_distances(w, batch_buf)?,
            }
            return Ok(false);
        }
        let resp = state.execute(req, batch_buf);
        write_response(w, &resp)?;
        Ok(false)
    }));
    match outcome {
        Ok(result) => result,
        Err(_) => {
            state.note_panic();
            write_response(
                w,
                &Response::Error(
                    "internal error: the request handler panicked; the daemon keeps serving \
                     (Stats counts this under panics_caught)"
                        .into(),
                ),
            )?;
            Ok(false)
        }
    }
}

/// A running server: the bound address plus the accept-loop handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    accept_loop: Option<JoinHandle<io::Result<()>>>,
    state: Arc<ServeState>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters, shutdown flag).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Blocks until the serve loop exits (i.e. until some client sends
    /// `Shutdown`), then reports the accept loop's result.
    pub fn wait(mut self) -> io::Result<()> {
        // `wait` consumes self, so the handle is always present today; if
        // that invariant ever breaks, report it as an error instead of
        // panicking in the caller's serve path.
        let Some(handle) = self.accept_loop.take() else {
            return Err(io::Error::other("server already waited on"));
        };
        handle
            .join()
            .map_err(|_| io::Error::other("accept loop panicked"))?
    }

    /// Requests shutdown from this side and waits for the drain.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.request_shutdown();
        self.wait()
    }
}

/// Binds `addr` and serves it with the blocking thread-per-connection model
/// until a `Shutdown` request arrives — shorthand for [`serve_with_model`]
/// with [`ServeModel::Threads`].
pub fn serve(state: Arc<ServeState>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_with_model(state, addr, ServeModel::Threads)
}

/// Binds `addr` and runs the chosen connection model in a background thread
/// until a `Shutdown` request arrives.
///
/// Under [`ServeModel::Threads`] each accepted connection gets its own
/// handler thread with its own reused batch buffer; at most `state.threads`
/// connections are served at once — later ones queue in the listen backlog,
/// preserving strict bounds on worker memory. Under [`ServeModel::Epoll`]
/// (falling back to `Threads` off Linux) `state.threads` reactor threads
/// multiplex any number of connections over non-blocking sockets. Returns
/// once the listener is bound, so the caller can read the resolved address
/// immediately (pass port 0 for an ephemeral port).
pub fn serve_with_model(
    state: Arc<ServeState>,
    addr: impl ToSocketAddrs,
    model: ServeModel,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Both models poll the shutdown flag instead of blocking in `accept`:
    // the flag alone stops the loop, with no loopback nudge that could miss.
    listener.set_nonblocking(true)?;
    state
        .bound_addr
        .set(bound)
        .map_err(|_| io::Error::new(io::ErrorKind::AddrInUse, "state already serves a listener"))?;
    let loop_state = Arc::clone(&state);
    let accept_loop = std::thread::Builder::new()
        .name("hc2l-serve-accept".into())
        .spawn(move || match model.effective() {
            ServeModel::Threads => accept_loop(listener, loop_state),
            #[cfg(target_os = "linux")]
            ServeModel::Epoll => crate::reactor::run(listener, loop_state),
            #[cfg(not(target_os = "linux"))]
            ServeModel::Epoll => unreachable!("ServeModel::effective falls back off Linux"),
        })?;
    Ok(ServerHandle {
        addr: bound,
        accept_loop: Some(accept_loop),
        state,
    })
}

/// How long the non-blocking accept loop sleeps when the backlog is empty —
/// the upper bound on how stale its view of the shutdown flag can be.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(2);

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    // Active-handler cap: a plain counter, checked before spawning. The
    // listener is non-blocking: an empty backlog sleeps `ACCEPT_POLL` and
    // re-checks the shutdown flag, so a `Shutdown` requested while a client
    // holds an idle connection (or a half-written frame) cannot leave this
    // loop blocked in `accept` — the race the old loopback-connect nudge
    // papered over.
    let active = Arc::new(AtomicUsize::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Live connection streams, so the drain below can unblock handler
    // threads parked in a blocking read (an idle client must not wedge
    // shutdown). Each handler removes its own entry when it exits, so the
    // registry holds only open connections.
    let conns: Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let mut next_conn_id: u64 = 0;
    let mut result: io::Result<()> = Ok(());
    loop {
        if state.is_shutting_down() {
            break;
        }
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            // Empty backlog: sleep briefly and re-check the shutdown flag.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient per-connection failures must not kill the listener.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) =>
            {
                continue
            }
            // Anything else (fd exhaustion, listener teardown) ends the
            // loop — but through the drain below, never abandoning live
            // handler threads.
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if state.is_shutting_down() {
            break;
        }
        // Worker cap: park excess connections until a slot frees up. The
        // cap is *soft* — after a bounded wait the connection is served
        // anyway, so a daemon whose slots are all held by idle clients
        // still makes progress (and can still be told to shut down over
        // the wire).
        let cap_deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while active.load(Ordering::Acquire) >= state.threads
            && std::time::Instant::now() < cap_deadline
        {
            if state.is_shutting_down() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        if state.is_shutting_down() {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        // Accepted sockets must not inherit the listener's non-blocking
        // mode: this model's handlers park in blocking reads by design.
        if stream.set_nonblocking(false).is_err() {
            drop(stream);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        match stream.try_clone() {
            Ok(clone) => conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(conn_id, clone),
            // An unregistered connection could not be unblocked by the
            // shutdown drain and would wedge the final join; refuse it
            // (the peer sees a reset and can retry) rather than serve it
            // untracked.
            Err(_) => {
                drop(stream);
                continue;
            }
        };
        active.fetch_add(1, Ordering::AcqRel);
        state.note_accepted();
        let conn_state = Arc::clone(&state);
        let conn_active = Arc::clone(&active);
        let conn_registry = Arc::clone(&conns);
        let spawned = std::thread::Builder::new()
            .name("hc2l-serve-worker".into())
            .spawn(move || {
                // Drop guard, not trailing statements: if the handler ever
                // panics past `respond`'s isolation, skipping this cleanup
                // would leak a worker-cap slot and leave a dead stream in
                // the drain registry forever.
                struct Cleanup {
                    registry: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>,
                    active: Arc<AtomicUsize>,
                    conn_id: u64,
                }
                impl Drop for Cleanup {
                    fn drop(&mut self) {
                        self.registry
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .remove(&self.conn_id);
                        self.active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                let _cleanup = Cleanup {
                    registry: conn_registry,
                    active: conn_active,
                    conn_id,
                };
                let _ = handle_connection(stream, &conn_state);
            });
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(e) => {
                // The closure (and its stream) never ran: undo the
                // bookkeeping and end the loop through the drain.
                conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&conn_id);
                active.fetch_sub(1, Ordering::AcqRel);
                result = Err(e);
                break;
            }
        }
    }
    // Drain: close both halves of every still-open connection so handlers
    // parked in a blocking read observe EOF and exit, then join them all —
    // on the error paths too, so no handler thread is ever abandoned.
    for (_, stream) in conns.lock().unwrap_or_else(|p| p.into_inner()).drain() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for h in handlers {
        let _ = h.join();
    }
    result
}

/// Poll quantum for the blocking model's reads: the upper bound on how
/// stale a parked handler's view of the shutdown flag and of its own
/// idle/stall budgets can be.
const READ_POLL: Duration = Duration::from_millis(50);

/// Serves one connection until the peer hangs up, a protocol error occurs,
/// an idle/stall budget expires, or shutdown is requested. The batch buffer
/// lives for the whole connection, so steady-state one-to-many serving does
/// no per-request allocation beyond the response frame.
///
/// Reads go through the incremental [`FrameDecoder`] over a
/// `READ_POLL`-timeout socket instead of a blocking `read_request`: a
/// timeout at a frame boundary checks [`ServeConfig::idle_timeout`], a
/// timeout with a partial frame buffered checks
/// [`ServeConfig::stall_timeout`] — the blocking model's slow-loris
/// reaping, mirroring the reactor's sweep. A peer that disappears while a
/// response is being written (broken pipe) is survived and counted, never
/// propagated as a handler failure.
fn handle_connection(stream: TcpStream, state: &ServeState) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = stream;
    let mut decoder = FrameDecoder::new();
    let mut batch_buf: Vec<Distance> = Vec::new();
    let mut read_buf = vec![0u8; 64 << 10];
    let mut last_progress = Instant::now();
    'conn: loop {
        while let Some(req) = decoder.next_request()? {
            last_progress = Instant::now();
            // `respond` acknowledges a Shutdown *before* raising the flag,
            // so the accept loop's drain cannot close this socket ahead of
            // the response reaching the peer.
            match respond(state, &req, &mut writer, &mut batch_buf) {
                Ok(true) => break 'conn,
                Ok(false) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::BrokenPipe
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    state.note_write_error();
                    break 'conn;
                }
                Err(e) => return Err(e),
            }
            if state.is_shutting_down() {
                break 'conn;
            }
        }
        if state.is_shutting_down() {
            break 'conn;
        }
        match reader.read(&mut read_buf) {
            Ok(0) => {
                if decoder.is_idle() {
                    break 'conn;
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "EOF inside a frame",
                ));
            }
            Ok(n) => {
                decoder.feed(&read_buf[..n]);
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let budget = if decoder.is_idle() {
                    state.config().idle_timeout
                } else {
                    state.config().stall_timeout
                };
                if let Some(bound) = budget {
                    if last_progress.elapsed() >= bound {
                        state.note_reaped();
                        break 'conn;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                ) =>
            {
                // An abrupt reset with responses possibly in flight: the
                // same peer behaviour a write would surface as broken pipe.
                state.note_write_error();
                break 'conn;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_request;
    use hc2l_graph::toy::paper_figure1;
    use hc2l_oracle::OracleBuilder;
    use std::io::BufReader;

    fn test_state(cache: usize) -> Arc<ServeState> {
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        Arc::new(ServeState::new(oracle, 4, cache))
    }

    fn models() -> &'static [ServeModel] {
        ServeModel::available()
    }

    fn ask(addr: SocketAddr, req: &Request) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, req).unwrap();
        crate::protocol::read_response(&mut reader)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn end_to_end_over_tcp() {
        for &model in models() {
            end_to_end_over_tcp_with(model);
        }
    }

    fn end_to_end_over_tcp_with(model: ServeModel) {
        let state = test_state(256);
        let expected = state.oracle().distance(2, 9);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();

        assert_eq!(
            ask(addr, &Request::Distance(2, 9)),
            Response::Distance(expected)
        );
        // A second ask hits the cache and agrees.
        assert_eq!(
            ask(addr, &Request::Distance(9, 2)),
            Response::Distance(expected)
        );

        let targets: Vec<Vertex> = (0..16).collect();
        let Response::Distances(row) = ask(
            addr,
            &Request::OneToMany {
                source: 3,
                targets: targets.clone(),
            },
        ) else {
            panic!("expected a Distances response");
        };
        let mut want = Vec::new();
        state.oracle().one_to_many_into(3, &targets, &mut want);
        assert_eq!(row, want);

        // Out-of-range queries error without killing the server.
        assert!(matches!(
            ask(addr, &Request::Distance(999, 0)),
            Response::Error(_)
        ));

        let Response::Stats(stats) = ask(addr, &Request::Stats) else {
            panic!("expected a Stats response");
        };
        assert_eq!(stats.method_tag, Method::Hl.tag());
        assert_eq!(stats.num_vertices, 16);
        assert_eq!(stats.distance_queries, 2, "{model}");
        assert_eq!(stats.one_to_many_queries, 1, "{model}");
        assert_eq!(stats.one_to_many_targets, 16, "{model}");
        assert!(stats.cache_hits >= 1, "{model}");
        // Latency recording is on by default, so the queries above must
        // have produced non-zero percentiles over the wire.
        assert!(stats.distance_p50_ns > 0, "{model}");
        assert!(stats.distance_max_ns >= stats.distance_p99_ns, "{model}");
        assert!(stats.one_to_many_p50_ns > 0, "{model}");

        // The Metrics frame answers a scrapeable Prometheus document with
        // the same request counts the Stats frame reported.
        let Response::Metrics(doc) = ask(addr, &Request::Metrics) else {
            panic!("expected a Metrics response");
        };
        assert!(
            doc.contains("hc2l_requests_total{op=\"distance\"} 2"),
            "{model}: {doc}"
        );
        assert!(
            doc.contains("hc2l_latency_count{op=\"distance\",cache=\"hit\"} 1"),
            "{model}: {doc}"
        );
        assert!(doc.contains("# TYPE hc2l_latency_p99_ns gauge"), "{model}");

        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
    }

    #[test]
    fn latency_recording_toggle_and_counter_folding() {
        let state = test_state(256);
        // Recording on (default): histograms carry the tally.
        state.distance(0, 1);
        state.distance(0, 1);
        let stats = state.stats();
        assert_eq!(stats.distance_queries, 2);
        assert!(state.latency().distance_merged().count() == 2);
        assert!(stats.distance_p50_ns > 0);
        // Recording off: the plain counter takes over; totals keep folding.
        state.set_latency_recording(false);
        state.distance(0, 1);
        assert_eq!(state.stats().distance_queries, 3);
        assert_eq!(state.latency().distance_merged().count(), 2);
        state.set_latency_recording(true);
        state.distance(0, 1);
        assert_eq!(state.stats().distance_queries, 4);
    }

    #[test]
    fn shutdown_from_the_handle_side() {
        for &model in models() {
            let state = test_state(0);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            assert!(matches!(
                ask(addr, &Request::Distance(0, 5)),
                Response::Distance(_)
            ));
            server.shutdown().unwrap();
            assert!(state.is_shutting_down());
        }
    }

    #[test]
    fn concurrent_clients_get_exact_answers() {
        for &model in models() {
            concurrent_clients_get_exact_answers_with(model);
        }
    }

    fn concurrent_clients_get_exact_answers_with(model: ServeModel) {
        let state = test_state(1024);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        let mut expected = [[0u64; 16]; 16];
        for s in 0..16u32 {
            for t in 0..16u32 {
                expected[s as usize][t as usize] = state.oracle().distance(s, t);
            }
        }
        let clients: Vec<_> = (0..8u32)
            .map(|id| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    let mut got = Vec::new();
                    for i in 0..200u32 {
                        let (s, t) = ((i + id) % 16, (i * 7) % 16);
                        write_request(&mut writer, &Request::Distance(s, t)).unwrap();
                        let Some(Response::Distance(d)) =
                            crate::protocol::read_response(&mut reader).unwrap()
                        else {
                            panic!("expected a distance");
                        };
                        got.push((s, t, d));
                    }
                    got
                })
            })
            .collect();
        for c in clients {
            for (s, t, d) in c.join().unwrap() {
                assert_eq!(d, expected[s as usize][t as usize]);
            }
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_even_with_an_idle_connection() {
        for &model in models() {
            shutdown_drains_with_stuck_client(model, &[]);
        }
    }

    #[test]
    fn shutdown_drains_even_with_a_half_written_frame() {
        // A client that wrote part of a frame — here 2 of the 4 length
        // prefix bytes — and then went quiet is the other face of the
        // idle-connection shutdown race: the handler (or reactor) holds a
        // partial decode and must still be torn down promptly.
        for &model in models() {
            shutdown_drains_with_stuck_client(model, &[0x07, 0x00]);
        }
    }

    /// Opens a connection, writes `partial` (possibly nothing) without ever
    /// completing a frame, requests shutdown from the handle side, and
    /// asserts the daemon exits within a bounded time.
    fn shutdown_drains_with_stuck_client(model: ServeModel, partial: &[u8]) {
        use std::io::Write as _;
        let state = test_state(0);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        let mut stuck = TcpStream::connect(addr).unwrap();
        if !partial.is_empty() {
            stuck.write_all(partial).unwrap();
            stuck.flush().unwrap();
        }
        // Make sure the stuck connection is accepted and being served
        // before shutdown is requested.
        assert!(matches!(
            ask(addr, &Request::Distance(1, 2)),
            Response::Distance(_)
        ));
        let done = std::thread::spawn(move || server.shutdown());
        // The drain must finish promptly despite the stuck connection.
        let start = std::time::Instant::now();
        done.join().unwrap().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "{model} drain took {:?}",
            start.elapsed()
        );
        drop(stuck);
    }

    #[test]
    fn slow_writers_decode_correctly_on_both_models() {
        // A valid Distance and OneToMany frame delivered one byte at a
        // time (every flush is its own TCP segment thanks to nodelay) must
        // decode identically to whole-frame delivery on both models.
        use std::io::Write as _;
        for &model in models() {
            let state = test_state(0);
            let expected_d = state.oracle().distance(2, 9);
            let targets: Vec<Vertex> = (0..8).collect();
            let mut expected_row = Vec::new();
            state
                .oracle()
                .one_to_many_into(3, &targets, &mut expected_row);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();

            let stream = TcpStream::connect(server.addr()).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut frames = Vec::new();
            write_request(&mut frames, &Request::Distance(2, 9)).unwrap();
            write_request(
                &mut frames,
                &Request::OneToMany {
                    source: 3,
                    targets: targets.clone(),
                },
            )
            .unwrap();
            for b in &frames {
                writer.write_all(std::slice::from_ref(b)).unwrap();
                writer.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distance(expected_d)),
                "{model}"
            );
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distances(expected_row.clone())),
                "{model}"
            );
            drop((reader, writer));
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn backpressured_pipelined_requests_are_all_answered() {
        // Regression: a client that pipelines a batch whose response
        // (8 bytes x 150k targets = 1.2MB) exceeds the reactor's 1MB
        // backpressure high-water mark, plus a point query, *before reading
        // anything*, must still receive every answer once it starts
        // reading — the paused frames must resume when the write buffer
        // drains, not strand in the decoder. (The threads model has no
        // backpressure path; it simply blocks in write until the client
        // reads, so it covers the same contract trivially.)
        use std::io::Write as _;
        for &model in models() {
            let state = test_state(0);
            let expected_row_val = state.oracle().distance(0, 1);
            let expected_d = state.oracle().distance(2, 9);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();

            let stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(20)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let targets = vec![1u32; 150_000];
            write_request(&mut writer, &Request::OneToMany { source: 0, targets }).unwrap();
            write_request(&mut writer, &Request::Distance(2, 9)).unwrap();
            writer.flush().unwrap();
            // Give the server time to execute the batch, hit the high-water
            // mark and pause, with both frames fully delivered.
            std::thread::sleep(std::time::Duration::from_millis(200));

            let mut reader = BufReader::new(stream);
            let Some(Response::Distances(ds)) =
                crate::protocol::read_response(&mut reader).unwrap()
            else {
                panic!("{model}: expected the batched response");
            };
            assert_eq!(ds.len(), 150_000, "{model}");
            assert!(ds.iter().all(|&d| d == expected_row_val), "{model}");
            let Some(Response::Distance(d)) = crate::protocol::read_response(&mut reader).unwrap()
            else {
                panic!("{model}: the pipelined point query was stranded");
            };
            assert_eq!(d, expected_d, "{model}");
            drop((reader, writer));
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn rejected_requests_leave_stats_and_cache_untouched() {
        // Out-of-range queries must not count as served work nor seed the
        // cache with garbage keys — `Stats` and `cache_hit_rate` stay
        // honest. Checked through `execute` and over the wire on both
        // models.
        let state = test_state(256);
        let mut buf = Vec::new();
        assert!(matches!(
            state.execute(&Request::Distance(999, 0), &mut buf),
            Response::Error(_)
        ));
        assert!(matches!(
            state.execute(
                &Request::OneToMany {
                    source: 0,
                    targets: vec![1, 999],
                },
                &mut buf
            ),
            Response::Error(_)
        ));
        assert!(matches!(
            state.execute(
                &Request::OneToMany {
                    source: 999,
                    targets: vec![1],
                },
                &mut buf
            ),
            Response::Error(_)
        ));
        let stats = state.stats();
        assert_eq!(stats.distance_queries, 0);
        assert_eq!(stats.one_to_many_queries, 0);
        assert_eq!(stats.one_to_many_targets, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.cache_len, 0);
        assert_eq!(state.cache().stats().len, 0);

        for &model in models() {
            let state = test_state(256);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            assert!(matches!(
                ask(addr, &Request::Distance(999, 0)),
                Response::Error(_)
            ));
            assert!(matches!(
                ask(
                    addr,
                    &Request::OneToMany {
                        source: 0,
                        targets: vec![999],
                    }
                ),
                Response::Error(_)
            ));
            let Response::Stats(stats) = ask(addr, &Request::Stats) else {
                panic!("expected a Stats response");
            };
            assert_eq!(stats.distance_queries, 0, "{model}");
            assert_eq!(stats.one_to_many_queries, 0, "{model}");
            assert_eq!(stats.cache_hits + stats.cache_misses, 0, "{model}");
            assert_eq!(stats.cache_len, 0, "{model}");
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn saturated_daemon_still_accepts_a_shutdown_client() {
        // All worker slots held by an idle client: the soft cap must let a
        // late client in so a wire-protocol Shutdown can still land.
        let g = paper_figure1();
        let oracle = OracleBuilder::new(Method::Hl).build(&g);
        let state = Arc::new(ServeState::new(oracle, 1, 0)); // one slot
        let server = serve(Arc::clone(&state), ("127.0.0.1", 0)).unwrap();
        let addr = server.addr();
        // Occupy the only slot with a connection that stays idle.
        let idle = TcpStream::connect(addr).unwrap();
        // Give the accept loop time to hand the idle connection to a worker.
        std::thread::sleep(std::time::Duration::from_millis(100));
        // A second client must still get served (after the soft-cap wait)
        // and be able to shut the daemon down.
        assert_eq!(ask(addr, &Request::Shutdown), Response::ShuttingDown);
        server.wait().unwrap();
        drop(idle);
    }

    #[test]
    fn oversized_batches_are_rejected_not_framed() {
        // A request whose *response* would exceed the frame cap must fail
        // as a typed Error on the server, not as a malformed frame on the
        // client (u64 distances are twice the width of u32 targets).
        let state = test_state(0);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![0; crate::protocol::MAX_ONE_TO_MANY_TARGETS + 1],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Error(ref msg) if msg.contains("cap")));
        // A cap-sized batch of valid targets still answers (length checks
        // happen before vertex-range checks).
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1; 100],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 100));
    }

    #[test]
    fn static_index_rejects_updates_with_a_typed_error() {
        // In process...
        let state = test_state(0);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::UpdateWeights(vec![WeightUpdate::new(0, 1, 9)]),
            &mut buf,
        );
        assert!(matches!(resp, Response::Error(ref msg) if msg.contains("static")));
        assert_eq!(state.epoch(), 0);
        // ...and over the wire on both models, without killing the daemon.
        for &model in models() {
            let state = test_state(0);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            assert!(matches!(
                ask(addr, &Request::UpdateWeights(vec![WeightUpdate::new(0, 1, 9)])),
                Response::Error(ref msg) if msg.contains("static")
            ));
            assert!(matches!(
                ask(addr, &Request::Distance(1, 2)),
                Response::Distance(_)
            ));
            server.shutdown().unwrap();
        }
    }

    /// A weighted grid plus an updatable [`ServeState`] over it.
    fn updatable_state(method: Method, threads: usize, cache: usize) -> (Graph, Arc<ServeState>) {
        let g = hc2l_roadnet::seeded_grid(6, 6, 0xA11CE);
        let oracle = OracleBuilder::new(method).build(&g);
        let state = Arc::new(ServeState::with_updates(g.clone(), oracle, threads, cache));
        (g, state)
    }

    /// A batch that re-weights every third edge (mostly increases), applied
    /// to `g` in place and returned for the wire.
    fn traffic_batch(g: &mut Graph) -> Vec<WeightUpdate> {
        let edges: Vec<_> = g.edges().collect();
        let mut batch = Vec::new();
        for (i, (u, v, w)) in edges.into_iter().enumerate() {
            if i % 3 == 0 {
                batch.push(WeightUpdate::new(u, v, w * 7 + 3));
            } else if i % 5 == 0 {
                batch.push(WeightUpdate::new(u, v, 1));
            }
        }
        for up in &batch {
            assert!(g.set_edge_weight(up.u, up.v, up.new_weight));
        }
        batch
    }

    #[test]
    fn updates_invalidate_the_cache_through_the_epoch_swap() {
        let (mut g, state) = updatable_state(Method::Ch, 2, 256);
        let before = state.distance(0, 35); // cached at epoch 0
        assert_eq!(state.distance(0, 35), before, "cache warm");
        let batch = traffic_batch(&mut g);
        let mut buf = Vec::new();
        let Response::Updated(outcome) = state.execute(&Request::UpdateWeights(batch), &mut buf)
        else {
            panic!("expected an Updated response");
        };
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(state.epoch(), 1);
        // Every answer — including the previously cached pair — now matches
        // Dijkstra on the re-weighted graph.
        for s in (0..g.num_vertices() as Vertex).step_by(5) {
            let dist = hc2l_graph::dijkstra(&g, s);
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(state.distance(s, t), dist[t as usize], "({s}, {t})");
            }
        }
    }

    #[test]
    fn weight_updates_over_the_wire_stay_exact_on_both_models() {
        for &model in models() {
            for method in [Method::Ch, Method::Hc2l] {
                weight_updates_over_the_wire_with(model, method);
            }
        }
    }

    fn weight_updates_over_the_wire_with(model: ServeModel, method: Method) {
        let (mut g, state) = updatable_state(method, 4, 256);
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        // Warm a few answers (and the cache) on the initial generation.
        assert!(matches!(
            ask(addr, &Request::Distance(0, 35)),
            Response::Distance(_)
        ));
        let mut batch = traffic_batch(&mut g);
        batch.push(WeightUpdate::new(0, 35, 1)); // not an edge: rejected
        let expected_applied = (batch.len() - 1) as u64;
        let Response::Updated(outcome) = ask(addr, &Request::UpdateWeights(batch)) else {
            panic!("{model}/{method}: expected an Updated response");
        };
        assert_eq!(outcome.applied, expected_applied, "{model}/{method}");
        assert_eq!(outcome.rejected, 1, "{model}/{method}");
        assert_eq!(outcome.epoch, 1, "{model}/{method}");
        if method == Method::Ch {
            assert_eq!(
                hc2l_oracle::UpdateStrategy::from_tag(outcome.strategy_tag),
                Some(hc2l_oracle::UpdateStrategy::ChCustomize),
                "{model}: CH must absorb the batch incrementally"
            );
        }
        // Post-update answers — point and batched, on a fresh connection
        // too — match Dijkstra on the re-weighted graph with 0 mismatches.
        let n = g.num_vertices() as Vertex;
        for s in (0..n).step_by(7) {
            let dist = hc2l_graph::dijkstra(&g, s);
            for t in 0..n {
                let Response::Distance(d) = ask(addr, &Request::Distance(s, t)) else {
                    panic!("{model}/{method}: expected a distance");
                };
                assert_eq!(d, dist[t as usize], "{model}/{method} ({s}, {t})");
            }
            let targets: Vec<Vertex> = (0..n).collect();
            let Response::Distances(row) = ask(
                addr,
                &Request::OneToMany {
                    source: s,
                    targets: targets.clone(),
                },
            ) else {
                panic!("{model}/{method}: expected a batched response");
            };
            let want: Vec<Distance> = targets.iter().map(|&t| dist[t as usize]).collect();
            assert_eq!(row, want, "{model}/{method} one-to-many from {s}");
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn concurrent_queries_during_update_never_error_and_see_a_clean_swap() {
        for &model in models() {
            concurrent_queries_during_update_with(model);
        }
    }

    fn concurrent_queries_during_update_with(model: ServeModel) {
        let (g0, state) = updatable_state(Method::Ch, 4, 1024);
        let mut g1 = g0.clone();
        let batch = traffic_batch(&mut g1);
        let n = g0.num_vertices() as Vertex;
        let old: Vec<Vec<Distance>> = (0..n).map(|s| hc2l_graph::dijkstra(&g0, s)).collect();
        let new: Vec<Vec<Distance>> = (0..n).map(|s| hc2l_graph::dijkstra(&g1, s)).collect();
        let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
        let addr = server.addr();
        // `swapped` is raised only after the Updated response arrived, i.e.
        // strictly after the generation swap: a query *sent* with the flag
        // already up must answer on the new generation. Mid-race queries may
        // see either generation but never an error and never a mix.
        let swapped = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..4u32)
            .map(|id| {
                let swapped = Arc::clone(&swapped);
                let stop = Arc::clone(&stop);
                let old = old.clone();
                let new = new.clone();
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    let mut i = 0u32;
                    let mut post_swap_queries = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let (s, t) = ((i * 3 + id) % n, (i * 11) % n);
                        let sent_after_swap = swapped.load(Ordering::SeqCst);
                        write_request(&mut writer, &Request::Distance(s, t)).unwrap();
                        let Some(Response::Distance(d)) =
                            crate::protocol::read_response(&mut reader).unwrap()
                        else {
                            panic!("query during update errored");
                        };
                        let (o, w) = (old[s as usize][t as usize], new[s as usize][t as usize]);
                        if sent_after_swap {
                            assert_eq!(d, w, "post-swap query ({s}, {t}) on the old generation");
                            post_swap_queries += 1;
                        } else {
                            assert!(
                                d == o || d == w,
                                "({s}, {t}): {d} matches neither generation"
                            );
                        }
                        i += 1;
                    }
                    post_swap_queries
                })
            })
            .collect();
        // Let the clients get going, then update on a separate connection.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let Response::Updated(outcome) = ask(addr, &Request::UpdateWeights(batch)) else {
            panic!("{model}: expected an Updated response");
        };
        assert_eq!(outcome.epoch, 1, "{model}");
        swapped.store(true, Ordering::SeqCst);
        // Keep querying past the swap so the post-swap branch is exercised.
        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let post: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(post > 0, "{model}: no query ran after the swap");
        server.shutdown().unwrap();
    }

    #[test]
    fn pipelined_queries_behind_an_update_answer_on_the_new_generation() {
        // One connection pipelines: query, update, query — without reading.
        // Responses must come back in order, and the trailing query must be
        // answered on the post-update index (per-connection ordering holds
        // even though the epoll model offloads the update to a worker).
        use std::io::Write as _;
        for &model in models() {
            let (mut g, state) = updatable_state(Method::Ch, 2, 0);
            let d_old = state.oracle().distance(0, 35);
            let batch = traffic_batch(&mut g);
            let d_new = hc2l_graph::dijkstra(&g, 0)[35];
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            write_request(&mut writer, &Request::Distance(0, 35)).unwrap();
            write_request(&mut writer, &Request::UpdateWeights(batch)).unwrap();
            write_request(&mut writer, &Request::Distance(0, 35)).unwrap();
            writer.flush().unwrap();
            let mut reader = BufReader::new(stream);
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distance(d_old)),
                "{model}: leading query answers on the old generation"
            );
            let Some(Response::Updated(outcome)) =
                crate::protocol::read_response(&mut reader).unwrap()
            else {
                panic!("{model}: expected the Updated response second");
            };
            assert_eq!(outcome.epoch, 1, "{model}");
            assert_eq!(
                crate::protocol::read_response(&mut reader).unwrap(),
                Some(Response::Distance(d_new)),
                "{model}: trailing query answers on the new generation"
            );
            drop((reader, writer));
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn execute_bypasses_cache_for_batches_but_counts_them() {
        let state = test_state(64);
        let mut buf = Vec::new();
        let resp = state.execute(
            &Request::OneToMany {
                source: 0,
                targets: vec![1, 2, 3],
            },
            &mut buf,
        );
        assert!(matches!(resp, Response::Distances(ref d) if d.len() == 3));
        let stats = state.stats();
        assert_eq!(stats.one_to_many_queries, 1);
        assert_eq!(stats.one_to_many_targets, 3);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    /// Polls `stats()` until `pred` holds or ~5s pass; returns the last
    /// snapshot either way (the caller asserts on it for a clear failure).
    fn wait_for_stats(
        state: &ServeState,
        pred: impl Fn(&crate::protocol::ServerStats) -> bool,
    ) -> crate::protocol::ServerStats {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let s = state.stats();
            if pred(&s) || std::time::Instant::now() >= deadline {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// Makes dropping `stream` send an RST instead of a clean FIN
    /// (`SO_LINGER` with zero timeout) — the abrupt-vanish shape of a
    /// crashed client, which a polite close cannot reproduce: small
    /// responses park in the kernel send buffer and no error ever surfaces.
    #[cfg(target_os = "linux")]
    fn rst_on_drop(stream: &TcpStream) {
        use std::os::unix::io::AsRawFd;
        #[repr(C)]
        struct Linger {
            l_onoff: i32,
            l_linger: i32,
        }
        extern "C" {
            fn setsockopt(
                fd: i32,
                level: i32,
                name: i32,
                value: *const std::ffi::c_void,
                len: u32,
            ) -> i32;
        }
        const SOL_SOCKET: i32 = 1;
        const SO_LINGER: i32 = 13;
        let linger = Linger {
            l_onoff: 1,
            l_linger: 0,
        };
        // SAFETY: passes a live pointer to `linger` with its exact size;
        // the kernel only reads optlen bytes through it during the call.
        let rc = unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_LINGER,
                (&linger as *const Linger).cast(),
                std::mem::size_of::<Linger>() as u32,
            )
        };
        assert_eq!(rc, 0, "setsockopt(SO_LINGER) failed");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn broken_pipe_mid_response_survives_on_both_models() {
        // A client that pipelines a pile of requests and vanishes without
        // reading any answer must cost the server one counted write error,
        // never a worker (threads model) or a reactor (epoll model).
        use std::io::Write as _;
        for &model in models() {
            let state = test_state(0);
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            {
                let stream = TcpStream::connect(addr).unwrap();
                rst_on_drop(&stream);
                let mut w = BufWriter::new(stream.try_clone().unwrap());
                for _ in 0..2000 {
                    write_request(&mut w, &Request::Distance(2, 9)).unwrap();
                }
                w.flush().unwrap();
                // Drop with every response unread: the RST lands while the
                // server still owes (or is still reading) this peer.
            }
            let stats = wait_for_stats(&state, |s| s.write_errors >= 1);
            assert!(
                stats.write_errors >= 1,
                "{model}: the broken pipe was not counted: {stats:?}"
            );
            // The daemon keeps serving new connections afterwards.
            let expected = state.oracle().distance(2, 9);
            assert_eq!(
                ask(addr, &Request::Distance(2, 9)),
                Response::Distance(expected),
                "{model}"
            );
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn slow_loris_is_reaped_and_counted_on_both_models() {
        use std::io::{Read as _, Write as _};
        for &model in models() {
            let state = Arc::new(
                ServeState::new(OracleBuilder::new(Method::Hl).build(&paper_figure1()), 2, 0)
                    .with_config(ServeConfig {
                        idle_timeout: Some(Duration::from_millis(600)),
                        stall_timeout: Some(Duration::from_millis(250)),
                        ..ServeConfig::default()
                    }),
            );
            let server = serve_with_model(Arc::clone(&state), ("127.0.0.1", 0), model).unwrap();
            let addr = server.addr();
            // Dribble a frame header claiming 100 bytes, then stall forever.
            let mut loris = TcpStream::connect(addr).unwrap();
            loris.write_all(&100u32.to_le_bytes()).unwrap();
            loris.flush().unwrap();
            let stats = wait_for_stats(&state, |s| s.connections_reaped >= 1);
            assert!(
                stats.connections_reaped >= 1,
                "{model}: the stalled connection was not reaped: {stats:?}"
            );
            assert!(stats.connections_accepted >= 1, "{model}");
            // The reaped socket is actually closed from the server side.
            loris
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut byte = [0u8; 1];
            match loris.read(&mut byte) {
                Ok(0) | Err(_) => {}
                Ok(_) => panic!("{model}: expected the server to close the loris"),
            }
            // Healthy clients are unaffected.
            let expected = state.oracle().distance(2, 9);
            assert_eq!(
                ask(addr, &Request::Distance(2, 9)),
                Response::Distance(expected),
                "{model}"
            );
            server.shutdown().unwrap();
        }
    }

    #[test]
    fn admission_control_sheds_past_the_inflight_cap() {
        let state = test_state(0);
        // Cap 0 disables admission control entirely.
        assert!(state.admit_query().is_ok());
        let capped = test_state(0);
        let capped = Arc::new(
            Arc::try_unwrap(capped)
                .unwrap_or_else(|_| panic!("sole owner"))
                .with_config(ServeConfig {
                    max_inflight: 1,
                    ..ServeConfig::default()
                }),
        );
        let guard = capped.admit_query().expect("first query admitted");
        match capped.admit_query() {
            Err(msg) => {
                assert!(msg.contains("saturated"), "{msg}");
            }
            Ok(_) => panic!("expected the second query to be shed"),
        }
        drop(guard);
        // Releasing the slot re-admits, even after the earlier shed.
        assert!(capped.admit_query().is_ok());
        assert_eq!(capped.stats().overload_rejections, 1);
    }
}
