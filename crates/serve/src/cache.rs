//! A sharded LRU cache for point-to-point query results.
//!
//! Labelling queries are tens of nanoseconds, so a result cache only pays
//! off when it is (a) lock-cheap — the key is sharded so concurrent workers
//! rarely contend on the same mutex — and (b) optional — capacity 0 turns
//! the cache into a no-op so the serving layer can A/B it. Hit and miss
//! counters are kept globally (relaxed atomics) for the server's `Stats`
//! response and the bench's cache-hit-rate column.
//!
//! Distances in this workspace are symmetric, so keys are canonicalised to
//! `(min(s,t), max(s,t))`: a `(t, s)` probe hits a cached `(s, t)` result.
//!
//! Entries are tagged with the **index generation** (epoch) they were
//! computed against: after a weight-update batch swaps in a new generation,
//! the serving layer probes with the new epoch and every stale entry reads
//! as a miss — O(1) whole-cache invalidation with no sweep. Stale slots are
//! overwritten on re-insert or age out through the LRU. The epoch-less
//! [`QueryCache::get`]/[`QueryCache::insert`] are conveniences for
//! single-generation users (epoch 0).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hc2l_graph::{Distance, Vertex};

/// Counter snapshot of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the oracle.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub len: usize,
    /// Total capacity across all shards (0 = cache disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: a bounded LRU map from packed `(s, t)` keys to distances.
///
/// Recency is an intrusive doubly-linked list threaded through a slot
/// arena, so `get`/`insert` are O(1) with no per-operation allocation once
/// the shard is full (slots are recycled in place).
struct Shard {
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    /// Most recently used slot, `NIL` when empty.
    head: u32,
    /// Least recently used slot, `NIL` when empty.
    tail: u32,
    capacity: usize,
}

struct Slot {
    key: u64,
    value: Distance,
    /// Index generation the value was computed against; a probe from a
    /// different generation reads as a miss.
    epoch: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks a slot from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links a slot at the most-recently-used end.
    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u64, epoch: u64) -> Option<Distance> {
        let i = *self.map.get(&key)?;
        if self.slots[i as usize].epoch != epoch {
            return None; // stale generation: a miss, overwritten on insert
        }
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i as usize].value)
    }

    fn insert(&mut self, key: u64, value: Distance, epoch: u64) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].value = value;
            self.slots[i as usize].epoch = epoch;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key,
                value,
                epoch,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Evict the least recently used entry and recycle its slot.
            let i = self.tail;
            self.unlink(i);
            let evicted = self.slots[i as usize].key;
            self.map.remove(&evicted);
            self.slots[i as usize].key = key;
            self.slots[i as usize].value = value;
            self.slots[i as usize].epoch = epoch;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// A sharded LRU result cache keyed on canonicalised `(s, t)` pairs.
///
/// Shared by reference across worker threads; each operation locks exactly
/// one shard (picked by key hash), and the hit/miss counters are relaxed
/// atomics outside any lock.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// Default shard count: enough that 8–16 workers rarely collide.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache holding at most `capacity` entries spread over `shards`
    /// mutex-protected shards. `capacity == 0` disables the cache entirely
    /// (every lookup is a recorded miss, inserts are dropped).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        QueryCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: per_shard * shards,
        }
    }

    /// A disabled cache: no storage, all lookups miss.
    pub fn disabled() -> Self {
        QueryCache::new(0, 1)
    }

    /// Whether the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    #[inline]
    fn key(s: Vertex, t: Vertex) -> u64 {
        // Distances are symmetric: canonicalise so (t, s) hits (s, t).
        let (lo, hi) = if s <= t { (s, t) } else { (t, s) };
        (lo as u64) << 32 | hi as u64
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        // Fibonacci hash of the packed pair; the packed key's low bits are
        // the raw vertex id, which would shard-skew grid workloads.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.shards.len()
    }

    /// Locks a shard, surviving poison: a worker that panicked mid-mutation
    /// (panics are caught and answered as errors, the daemon keeps serving)
    /// may have left the map and recency list out of sync, so the shard is
    /// reset — the cache is only an accelerator, dropping its contents is
    /// always correct — and the poison cleared so later locks keep it.
    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[i].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                *g = Shard::new(g.capacity);
                self.shards[i].clear_poison();
                g
            }
        }
    }

    /// Looks up a pair at generation 0 (single-generation users).
    pub fn get(&self, s: Vertex, t: Vertex) -> Option<Distance> {
        self.get_at(s, t, 0)
    }

    /// Stores a pair's distance at generation 0 (no-op when disabled).
    pub fn insert(&self, s: Vertex, t: Vertex, d: Distance) {
        self.insert_at(s, t, d, 0)
    }

    /// Looks up a pair computed against index generation `epoch`, updating
    /// recency and the hit/miss counters. An entry stored under any other
    /// generation reads as a miss.
    pub fn get_at(&self, s: Vertex, t: Vertex, epoch: u64) -> Option<Distance> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = QueryCache::key(s, t);
        let got = self.lock_shard(self.shard_of(key)).get(key, epoch);
        match got {
            Some(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a pair's distance computed against index generation `epoch`
    /// (no-op when disabled). The caller passes the epoch it *queried* at,
    /// not the current one — if a generation swap raced the query, the
    /// entry lands tagged with the old epoch and can never serve a stale
    /// answer to new-generation probes.
    pub fn insert_at(&self, s: Vertex, t: Vertex, d: Distance, epoch: u64) {
        if !self.is_enabled() {
            return;
        }
        let key = QueryCache::key(s, t);
        self.lock_shard(self.shard_of(key)).insert(key, d, epoch);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: (0..self.shards.len())
                .map(|i| self.lock_shard(i).map.len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insert_and_symmetry() {
        let cache = QueryCache::new(64, 4);
        assert_eq!(cache.get(1, 2), None);
        cache.insert(1, 2, 42);
        assert_eq!(cache.get(1, 2), Some(42));
        assert_eq!(cache.get(2, 1), Some(42), "symmetric key must hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard so the eviction order is fully deterministic.
        let cache = QueryCache::new(2, 1);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 20);
        assert_eq!(cache.get(1, 1), Some(10)); // touch 1 → 2 becomes LRU
        cache.insert(3, 3, 30); // evicts 2
        assert_eq!(cache.get(1, 1), Some(10));
        assert_eq!(cache.get(2, 2), None);
        assert_eq!(cache.get(3, 3), Some(30));
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let cache = QueryCache::new(2, 1);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 20);
        cache.insert(1, 1, 11); // update, touches 1
        cache.insert(3, 3, 30); // evicts 2, not 1
        assert_eq!(cache.get(1, 1), Some(11));
        assert_eq!(cache.get(2, 2), None);
    }

    #[test]
    fn epoch_mismatch_reads_as_a_miss() {
        let cache = QueryCache::new(64, 4);
        cache.insert_at(1, 2, 42, 0);
        assert_eq!(cache.get_at(1, 2, 0), Some(42));
        // A new generation sees the old entry as a miss...
        assert_eq!(cache.get_at(1, 2, 1), None);
        // ...and re-inserting under the new epoch takes over the slot.
        cache.insert_at(1, 2, 43, 1);
        assert_eq!(cache.get_at(1, 2, 1), Some(43));
        assert_eq!(cache.get_at(1, 2, 0), None, "old generation is gone");
        // A racing insert tagged with a stale epoch can never poison the
        // current generation.
        cache.insert_at(3, 4, 99, 0);
        assert_eq!(cache.get_at(3, 4, 1), None);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn disabled_cache_is_a_noop() {
        let cache = QueryCache::disabled();
        assert!(!cache.is_enabled());
        cache.insert(1, 2, 3);
        assert_eq!(cache.get(1, 2), None);
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.capacity, 0);
    }

    #[test]
    fn concurrent_use_keeps_counts_consistent() {
        let cache = std::sync::Arc::new(QueryCache::new(1024, 8));
        let threads: Vec<_> = (0..8u32)
            .map(|id| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let (s, t) = (i % 97, (i * 7 + id) % 89);
                        if cache.get(s, t).is_none() {
                            cache.insert(s, t, (s + t) as u64);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 1000);
        assert!(s.len <= s.capacity);
        // Every cached answer is still the right one.
        for s_v in 0..97u32 {
            for t_v in 0..89u32 {
                if let Some(d) = cache.get(s_v, t_v) {
                    assert_eq!(d, (s_v + t_v) as u64);
                }
            }
        }
    }

    #[test]
    fn poisoned_shard_resets_and_keeps_serving() {
        let cache = std::sync::Arc::new(QueryCache::new(64, 1));
        cache.insert(1, 2, 42);
        let c2 = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.lock_shard(0);
            panic!("poison the shard mid-mutation");
        })
        .join();
        // The next lock finds the poison, resets the (possibly inconsistent)
        // shard, and clears it — a miss, not a panic.
        assert_eq!(cache.get(1, 2), None);
        // ...and the cache is fully functional again afterwards.
        cache.insert(1, 2, 42);
        assert_eq!(cache.get(1, 2), Some(42));
    }

    #[test]
    fn eviction_stress_never_loses_map_list_sync() {
        let cache = QueryCache::new(8, 1);
        for i in 0..10_000u32 {
            cache.insert(i % 23, (i * 13) % 31, i as u64);
            cache.get((i * 5) % 23, (i * 11) % 31);
        }
        let s = cache.stats();
        assert!(s.len <= 8);
    }
}
