//! A sharded LRU cache for point-to-point query results.
//!
//! Labelling queries are tens of nanoseconds, so a result cache only pays
//! off when it is (a) lock-cheap — the key is sharded so concurrent workers
//! rarely contend on the same mutex — and (b) optional — capacity 0 turns
//! the cache into a no-op so the serving layer can A/B it. Hit and miss
//! counters for the server's `Stats` response and the bench's
//! cache-hit-rate column are per-shard cells written with a plain
//! load/store *inside* the shard's critical section: the lock already
//! serialises writers, so the counters cost no `lock`-prefixed RMW on the
//! probe path — which matters once the probe sits between the serving
//! layer's two latency-clock reads, where every full barrier stops the
//! pipeline.
//!
//! Large caches additionally get a **lock-free front layer** ([`Front`]):
//! a direct-mapped array of per-slot seqlocks that serves the steady-state
//! hit with five plain atomic loads and zero `lock`-prefixed instructions.
//! The LRU shards stay the source of truth (and the only bounded storage);
//! the front is a best-effort accelerator filled on the way out of a shard
//! hit or insert.
//!
//! Distances in this workspace are symmetric, so keys are canonicalised to
//! `(min(s,t), max(s,t))`: a `(t, s)` probe hits a cached `(s, t)` result.
//!
//! Entries are tagged with the **index generation** (epoch) they were
//! computed against: after a weight-update batch swaps in a new generation,
//! the serving layer probes with the new epoch and every stale entry reads
//! as a miss — O(1) whole-cache invalidation with no sweep. Stale slots are
//! overwritten on re-insert or age out through the LRU. The epoch-less
//! [`QueryCache::get`]/[`QueryCache::insert`] are conveniences for
//! single-generation users (epoch 0).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hc2l_graph::{Distance, Vertex};

use crate::lockfree::FrontCore;

/// Counter snapshot of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (LRU shards and lock-free front
    /// combined). Front hits are counted on striped plain-store cells, so
    /// under pathological thread counts (> [`FRONT_STRIPES`] concurrently
    /// created threads hammering one cache) the count can drop the odd
    /// increment; misses are always exact.
    pub hits: u64,
    /// Lookups that fell through to the oracle.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub len: usize,
    /// Total capacity across all shards (0 = cache disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: a bounded LRU map from packed `(s, t)` keys to distances.
///
/// Recency is an intrusive doubly-linked list threaded through a slot
/// arena, so `get`/`insert` are O(1) with no per-operation allocation once
/// the shard is full (slots are recycled in place).
struct Shard {
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    /// Most recently used slot, `NIL` when empty.
    head: u32,
    /// Least recently used slot, `NIL` when empty.
    tail: u32,
    capacity: usize,
}

struct Slot {
    key: u64,
    value: Distance,
    /// Index generation the value was computed against; a probe from a
    /// different generation reads as a miss.
    epoch: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks a slot from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links a slot at the most-recently-used end.
    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u64, epoch: u64) -> Option<Distance> {
        let i = *self.map.get(&key)?;
        if self.slots[i as usize].epoch != epoch {
            return None; // stale generation: a miss, overwritten on insert
        }
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i as usize].value)
    }

    fn insert(&mut self, key: u64, value: Distance, epoch: u64) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].value = value;
            self.slots[i as usize].epoch = epoch;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key,
                value,
                epoch,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Evict the least recently used entry and recycle its slot.
            let i = self.tail;
            self.unlink(i);
            let evicted = self.slots[i as usize].key;
            self.map.remove(&evicted);
            self.slots[i as usize].key = key;
            self.slots[i as usize].value = value;
            self.slots[i as usize].epoch = epoch;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Per-shard hit/miss cells. Only the shard's lock holder writes them (a
/// plain load/store pair — no RMW needed under the lock) and they live
/// *outside* the `Mutex`, so a poisoned-shard reset cannot zero them.
/// Padded so two shards' counters never share a cache line.
#[repr(align(64))]
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardCounters {
    /// Lock-holder-only increment: load + store, no locked RMW.
    #[inline]
    fn bump(cell: &AtomicU64) {
        cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }
}

/// Number of hit-counter stripes on the lock-free front cache. Stripes are
/// handed to threads round-robin, so as long as no more than this many
/// concurrently-created threads hammer one cache, every writer owns its
/// cell exclusively and the count is exact (see [`CacheStats::hits`]).
const FRONT_STRIPES: usize = 64;

#[repr(align(64))]
#[derive(Default)]
struct HitCell(AtomicU64);

/// A direct-mapped, lock-free read layer in front of the LRU shards.
///
/// The seqlock protocol itself lives in [`crate::lockfree::FrontCore`],
/// written generically over the [`hc2l_check::facade`] atomics traits so
/// the model-check suite (`tests/model.rs`) explores the SAME source under
/// exhaustive interleaving; here it is instantiated with the zero-cost
/// `StdAtomics` default. Readers take no lock (a torn or mid-write slot
/// just reads as a miss and falls through to the LRU), and writers claim a
/// slot with one CAS, free to lose races — the front is an accelerator,
/// never the source of truth. This is what makes a cache *hit* cheap
/// enough to sit between the serving layer's two latency-clock reads: the
/// steady-state hit path is five plain atomic loads plus one striped
/// plain-store counter bump, with not a single `lock`-prefixed instruction
/// to stall the pipeline (a locked RMW between two `rdtsc` reads
/// serialises the pipeline and bills its full latency to the measured
/// span).
///
/// Two deliberate semantic trades, both safe because a cached distance is
/// an immutable function of `(pair, epoch)`:
///
/// * an entry can linger here after the LRU evicts it, so a lookup may
///   still hit after eviction — eviction is capacity management, not
///   invalidation (invalidation is the epoch tag, honoured here exactly as
///   in the shards);
/// * hit counts are striped plain load/store cells ([`FRONT_STRIPES`]).
struct Front {
    core: FrontCore,
    hits: Box<[HitCell]>,
}

impl Front {
    /// Caches below this capacity skip the front entirely: the LRU's exact
    /// eviction order stays observable (deterministic small-cache tests
    /// rely on it), and a tiny cache gains nothing from the accelerator.
    const MIN_CAPACITY: usize = 4096;

    fn new(capacity: usize) -> Front {
        // Empty FrontCore slots carry key u64::MAX, which never matches a
        // probe: real keys pack two in-range vertex ids, validated by the
        // serving layer.
        let n = (capacity / 8).next_power_of_two().clamp(1024, 8192);
        Front {
            core: FrontCore::new(n),
            hits: (0..FRONT_STRIPES).map(|_| HitCell::default()).collect(),
        }
    }

    /// Lock-free probe; a mid-write, torn, or mismatched slot is a miss.
    #[inline]
    fn probe(&self, key: u64, epoch: u64) -> Option<Distance> {
        self.core.probe(key, epoch)
    }

    /// Best-effort publish; losing the claim race just skips the fill.
    #[inline]
    fn fill(&self, key: u64, value: Distance, epoch: u64) {
        self.core.fill(key, value, epoch);
    }

    /// Thread-striped hit count: plain load/store on a thread-sticky cell.
    #[inline]
    fn count_hit(&self) {
        let cell = &self.hits[front_stripe()].0;
        cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    fn hit_total(&self) -> u64 {
        self.hits.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Thread-sticky stripe index, assigned round-robin on first use.
#[inline]
fn front_stripe() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % FRONT_STRIPES;
        s.set(v);
        v
    })
}

/// A sharded LRU result cache keyed on canonicalised `(s, t)` pairs.
///
/// Shared by reference across worker threads; each operation locks exactly
/// one shard (picked by key hash) and maintains that shard's hit/miss
/// counters inside the critical section. Large caches route repeat hits
/// through the lock-free [`Front`] instead.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    counters: Vec<ShardCounters>,
    front: Option<Front>,
    capacity: usize,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// Default shard count: enough that 8–16 workers rarely collide.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache holding at most `capacity` entries spread over `shards`
    /// mutex-protected shards. `capacity == 0` disables the cache entirely
    /// (every lookup is a recorded miss, inserts are dropped).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        let capacity = per_shard * shards;
        QueryCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            counters: (0..shards).map(|_| ShardCounters::default()).collect(),
            front: (capacity >= Front::MIN_CAPACITY).then(|| Front::new(capacity)),
            capacity,
        }
    }

    /// A disabled cache: no storage, all lookups miss.
    pub fn disabled() -> Self {
        QueryCache::new(0, 1)
    }

    /// Whether the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    #[inline]
    fn key(s: Vertex, t: Vertex) -> u64 {
        // Distances are symmetric: canonicalise so (t, s) hits (s, t).
        let (lo, hi) = if s <= t { (s, t) } else { (t, s) };
        (lo as u64) << 32 | hi as u64
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        // Fibonacci hash of the packed pair; the packed key's low bits are
        // the raw vertex id, which would shard-skew grid workloads.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.shards.len()
    }

    /// Locks a shard, surviving poison: a worker that panicked mid-mutation
    /// (panics are caught and answered as errors, the daemon keeps serving)
    /// may have left the map and recency list out of sync, so the shard is
    /// reset — the cache is only an accelerator, dropping its contents is
    /// always correct — and the poison cleared so later locks keep it.
    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[i].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                *g = Shard::new(g.capacity);
                self.shards[i].clear_poison();
                g
            }
        }
    }

    /// Looks up a pair at generation 0 (single-generation users).
    pub fn get(&self, s: Vertex, t: Vertex) -> Option<Distance> {
        self.get_at(s, t, 0)
    }

    /// Stores a pair's distance at generation 0 (no-op when disabled).
    pub fn insert(&self, s: Vertex, t: Vertex, d: Distance) {
        self.insert_at(s, t, d, 0)
    }

    /// Looks up a pair computed against index generation `epoch`, updating
    /// recency and the hit/miss counters. An entry stored under any other
    /// generation reads as a miss.
    pub fn get_at(&self, s: Vertex, t: Vertex, epoch: u64) -> Option<Distance> {
        if !self.is_enabled() {
            // Disabled caches still count misses honestly; shard 0's lock
            // makes the load/store increment race-free.
            let _guard = self.lock_shard(0);
            ShardCounters::bump(&self.counters[0].misses);
            return None;
        }
        let key = QueryCache::key(s, t);
        if let Some(front) = &self.front {
            if let Some(d) = front.probe(key, epoch) {
                front.count_hit();
                return Some(d);
            }
        }
        let i = self.shard_of(key);
        let got = {
            let mut guard = self.lock_shard(i);
            let got = guard.get(key, epoch);
            let c = &self.counters[i];
            match got {
                Some(_) => ShardCounters::bump(&c.hits),
                None => ShardCounters::bump(&c.misses),
            }
            got
        };
        if let (Some(front), Some(d)) = (&self.front, got) {
            // Promote the shard hit so the next probe skips the lock.
            front.fill(key, d, epoch);
        }
        got
    }

    /// Stores a pair's distance computed against index generation `epoch`
    /// (no-op when disabled). The caller passes the epoch it *queried* at,
    /// not the current one — if a generation swap raced the query, the
    /// entry lands tagged with the old epoch and can never serve a stale
    /// answer to new-generation probes.
    pub fn insert_at(&self, s: Vertex, t: Vertex, d: Distance, epoch: u64) {
        if !self.is_enabled() {
            return;
        }
        let key = QueryCache::key(s, t);
        self.lock_shard(self.shard_of(key)).insert(key, d, epoch);
        if let Some(front) = &self.front {
            front.fill(key, d, epoch);
        }
    }

    /// Counter snapshot. `len` counts entries resident in the LRU shards —
    /// the bounded storage; the front's duplicates are not storage.
    pub fn stats(&self) -> CacheStats {
        let front_hits = self.front.as_ref().map_or(0, Front::hit_total);
        CacheStats {
            hits: front_hits
                + self
                    .counters
                    .iter()
                    .map(|c| c.hits.load(Ordering::Relaxed))
                    .sum::<u64>(),
            misses: self
                .counters
                .iter()
                .map(|c| c.misses.load(Ordering::Relaxed))
                .sum(),
            len: (0..self.shards.len())
                .map(|i| self.lock_shard(i).map.len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insert_and_symmetry() {
        let cache = QueryCache::new(64, 4);
        assert_eq!(cache.get(1, 2), None);
        cache.insert(1, 2, 42);
        assert_eq!(cache.get(1, 2), Some(42));
        assert_eq!(cache.get(2, 1), Some(42), "symmetric key must hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard so the eviction order is fully deterministic.
        let cache = QueryCache::new(2, 1);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 20);
        assert_eq!(cache.get(1, 1), Some(10)); // touch 1 → 2 becomes LRU
        cache.insert(3, 3, 30); // evicts 2
        assert_eq!(cache.get(1, 1), Some(10));
        assert_eq!(cache.get(2, 2), None);
        assert_eq!(cache.get(3, 3), Some(30));
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let cache = QueryCache::new(2, 1);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 20);
        cache.insert(1, 1, 11); // update, touches 1
        cache.insert(3, 3, 30); // evicts 2, not 1
        assert_eq!(cache.get(1, 1), Some(11));
        assert_eq!(cache.get(2, 2), None);
    }

    #[test]
    fn epoch_mismatch_reads_as_a_miss() {
        let cache = QueryCache::new(64, 4);
        cache.insert_at(1, 2, 42, 0);
        assert_eq!(cache.get_at(1, 2, 0), Some(42));
        // A new generation sees the old entry as a miss...
        assert_eq!(cache.get_at(1, 2, 1), None);
        // ...and re-inserting under the new epoch takes over the slot.
        cache.insert_at(1, 2, 43, 1);
        assert_eq!(cache.get_at(1, 2, 1), Some(43));
        assert_eq!(cache.get_at(1, 2, 0), None, "old generation is gone");
        // A racing insert tagged with a stale epoch can never poison the
        // current generation.
        cache.insert_at(3, 4, 99, 0);
        assert_eq!(cache.get_at(3, 4, 1), None);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn disabled_cache_is_a_noop() {
        let cache = QueryCache::disabled();
        assert!(!cache.is_enabled());
        cache.insert(1, 2, 3);
        assert_eq!(cache.get(1, 2), None);
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.capacity, 0);
    }

    #[test]
    fn concurrent_use_keeps_counts_consistent() {
        let cache = std::sync::Arc::new(QueryCache::new(1024, 8));
        let threads: Vec<_> = (0..8u32)
            .map(|id| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let (s, t) = (i % 97, (i * 7 + id) % 89);
                        if cache.get(s, t).is_none() {
                            cache.insert(s, t, (s + t) as u64);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 1000);
        assert!(s.len <= s.capacity);
        // Every cached answer is still the right one.
        for s_v in 0..97u32 {
            for t_v in 0..89u32 {
                if let Some(d) = cache.get(s_v, t_v) {
                    assert_eq!(d, (s_v + t_v) as u64);
                }
            }
        }
    }

    #[test]
    fn poisoned_shard_resets_and_keeps_serving() {
        let cache = std::sync::Arc::new(QueryCache::new(64, 1));
        cache.insert(1, 2, 42);
        let c2 = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.lock_shard(0);
            panic!("poison the shard mid-mutation");
        })
        .join();
        // The next lock finds the poison, resets the (possibly inconsistent)
        // shard, and clears it — a miss, not a panic.
        assert_eq!(cache.get(1, 2), None);
        // ...and the cache is fully functional again afterwards.
        cache.insert(1, 2, 42);
        assert_eq!(cache.get(1, 2), Some(42));
    }

    #[test]
    fn front_cache_serves_and_counts_hits() {
        // Capacity ≥ Front::MIN_CAPACITY engages the lock-free front.
        let cache = QueryCache::new(Front::MIN_CAPACITY, 4);
        assert!(cache.front.is_some());
        assert_eq!(cache.get(1, 2), None);
        cache.insert(1, 2, 42);
        assert_eq!(cache.get(1, 2), Some(42));
        assert_eq!(cache.get(2, 1), Some(42), "symmetric probe hits the front");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        // Small caches keep exact LRU-only semantics (capacity rounds up
        // to a shard multiple, so stay well below the threshold).
        assert!(QueryCache::new(Front::MIN_CAPACITY / 2, 4).front.is_none());
    }

    #[test]
    fn front_cache_respects_epochs() {
        let cache = QueryCache::new(8192, 4);
        cache.insert_at(1, 2, 42, 0);
        assert_eq!(cache.get_at(1, 2, 0), Some(42));
        assert_eq!(cache.get_at(1, 2, 1), None, "stale epoch must not hit");
        cache.insert_at(1, 2, 43, 1);
        assert_eq!(cache.get_at(1, 2, 1), Some(43));
        assert_eq!(cache.get_at(1, 2, 0), None, "old generation is gone");
    }

    #[test]
    fn front_cache_concurrent_probes_never_tear() {
        // Hammer one front-enabled cache from many threads with values that
        // encode (pair, epoch): a seqlock bug serving a torn or mismatched
        // (key, epoch, value) triple trips the assert.
        let expected = |s: u32, t: u32, epoch: u64| {
            let (lo, hi) = (s.min(t) as u64, s.max(t) as u64);
            (lo << 32 | hi).wrapping_mul(3).wrapping_add(epoch)
        };
        let cache = std::sync::Arc::new(QueryCache::new(8192, 8));
        let threads: Vec<_> = (0..8u32)
            .map(|id| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..20_000u32 {
                        let (s, t) = ((i * 7 + id) % 501, (i * 13) % 499);
                        let epoch = (i % 3) as u64;
                        match cache.get_at(s, t, epoch) {
                            Some(d) => assert_eq!(d, expected(s, t, epoch)),
                            None => cache.insert_at(s, t, expected(s, t, epoch), epoch),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        let total = 8 * 20_000;
        assert!(s.hits + s.misses <= total);
        // Striped counting can in principle drop increments only when two
        // of our threads share a stripe; with 64 stripes and consecutively
        // spawned threads that should not happen at all — allow a hair of
        // slack rather than flake if the suite's global round-robin wraps.
        assert!(
            s.hits + s.misses >= total - 64,
            "lost {} lookups",
            total - (s.hits + s.misses)
        );
    }

    #[test]
    fn eviction_stress_never_loses_map_list_sync() {
        let cache = QueryCache::new(8, 1);
        for i in 0..10_000u32 {
            cache.insert(i % 23, (i * 13) % 31, i as u64);
            cache.get((i * 5) % 23, (i * 11) % 31);
        }
        let s = cache.stats();
        assert!(s.len <= 8);
    }
}
