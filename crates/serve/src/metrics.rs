//! Per-opcode latency recording and the Prometheus metrics surface.
//!
//! One [`OpLatencies`] lives inside [`crate::ServeState`]: a lock-free
//! histogram per opcode (`Distance` split by cache hit/miss, `OneToMany`,
//! `UpdateWeights`), recorded at the `ServeState` entry points — the single
//! execution path both connection models funnel through, so Threads and
//! Epoll daemons measure identically. Recording costs two TSC reads plus a
//! wait-free `record` (~45-50ns wall per request on the reference host —
//! dominated by the TSC reads; the cache's lock-free front layer exists so
//! no `lock`-prefixed instruction sits between them and stalls the
//! pipeline) and can be switched off at runtime
//! ([`OpLatencies::set_recording`]) — the bench uses the toggle to *measure*
//! the overhead as `obs_overhead_pct` instead of assuming it.
//!
//! [`render`] turns a counter snapshot plus the live histograms into the
//! Prometheus text exposition document answered to a `Metrics` frame
//! (scrape with `hc2l-query --metrics`).

use std::sync::atomic::{AtomicBool, Ordering};

use hc2l_obs::prom;
use hc2l_obs::{clock, Histogram, Snapshot};

use crate::protocol::ServerStats;

/// The serve-side latency histograms, one per opcode (distance split by
/// cache outcome). Shared freely: recording is wait-free and snapshots are
/// consistent-enough point-in-time sums.
#[derive(Debug, Default)]
pub struct OpLatencies {
    /// When false, [`OpLatencies::start`] returns `None` and the hot path
    /// skips both clock reads. Default-off here; [`crate::ServeState`]
    /// enables it at construction.
    recording: AtomicBool,
    pub distance_hit: Histogram,
    pub distance_miss: Histogram,
    pub one_to_many: Histogram,
    pub update_weights: Histogram,
}

impl OpLatencies {
    /// A fresh set with recording enabled.
    pub fn enabled() -> Self {
        OpLatencies {
            recording: AtomicBool::new(true),
            ..Default::default()
        }
    }

    /// Starts a span: the raw timestamp to feed `record_*`, or `None` when
    /// recording is off (the caller falls back to its plain counter).
    #[inline]
    pub fn start(&self) -> Option<u64> {
        if self.recording.load(Ordering::Relaxed) {
            Some(clock::now())
        } else {
            None
        }
    }

    /// Runtime toggle, primarily for the bench's overhead A/B.
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Hit and miss folded together: the whole-opcode distance view the
    /// `Stats` percentile fields report.
    pub fn distance_merged(&self) -> Snapshot {
        let mut s = self.distance_hit.snapshot();
        s.merge(&self.distance_miss.snapshot());
        s
    }
}

/// Renders the full metrics document: identity and counter gauges from a
/// [`ServerStats`] snapshot, then one latency block per histogram series.
pub(crate) fn render(stats: &ServerStats, latency: &OpLatencies) -> String {
    let mut out = String::with_capacity(4096);

    let method = hc2l_oracle::Method::from_tag(stats.method_tag)
        .map(|m| m.name())
        .unwrap_or("unknown");
    let kernel = hc2l_graph::KernelKind::from_tag(stats.kernel_tag)
        .map(|k| k.name())
        .unwrap_or("unknown");
    prom::write_type(&mut out, "hc2l_index_info", "gauge");
    prom::write_sample(
        &mut out,
        "hc2l_index_info",
        &[
            ("method", method),
            ("kernel", kernel),
            ("mapped", if stats.mapped { "true" } else { "false" }),
        ],
        1,
    );

    let gauges: [(&str, u64); 6] = [
        ("hc2l_index_vertices", stats.num_vertices),
        ("hc2l_index_bytes", stats.index_bytes),
        ("hc2l_serve_threads", stats.threads as u64),
        ("hc2l_index_epoch", stats.epoch),
        ("hc2l_cache_entries", stats.cache_len),
        ("hc2l_cache_capacity", stats.cache_capacity),
    ];
    for (name, v) in gauges {
        prom::write_type(&mut out, name, "gauge");
        prom::write_sample(&mut out, name, &[], v);
    }

    prom::write_type(&mut out, "hc2l_requests_total", "counter");
    prom::write_sample(
        &mut out,
        "hc2l_requests_total",
        &[("op", "distance")],
        stats.distance_queries,
    );
    prom::write_sample(
        &mut out,
        "hc2l_requests_total",
        &[("op", "one_to_many")],
        stats.one_to_many_queries,
    );
    prom::write_sample(
        &mut out,
        "hc2l_requests_total",
        &[("op", "update_weights")],
        stats.update_batches,
    );

    let counters: [(&str, u64); 8] = [
        ("hc2l_one_to_many_targets_total", stats.one_to_many_targets),
        ("hc2l_cache_hits_total", stats.cache_hits),
        ("hc2l_cache_misses_total", stats.cache_misses),
        (
            "hc2l_connections_accepted_total",
            stats.connections_accepted,
        ),
        ("hc2l_connections_reaped_total", stats.connections_reaped),
        ("hc2l_panics_caught_total", stats.panics_caught),
        ("hc2l_overload_rejections_total", stats.overload_rejections),
        ("hc2l_write_errors_total", stats.write_errors),
    ];
    for (name, v) in counters {
        prom::write_type(&mut out, name, "counter");
        prom::write_sample(&mut out, name, &[], v);
    }

    let hit = latency.distance_hit.snapshot();
    let miss = latency.distance_miss.snapshot();
    let one_to_many = latency.one_to_many.snapshot();
    let updates = latency.update_weights.snapshot();
    let hit_labels: &[(&str, &str)] = &[("op", "distance"), ("cache", "hit")];
    let miss_labels: &[(&str, &str)] = &[("op", "distance"), ("cache", "miss")];
    let otm_labels: &[(&str, &str)] = &[("op", "one_to_many")];
    let upd_labels: &[(&str, &str)] = &[("op", "update_weights")];
    prom::write_latency_block(
        &mut out,
        "hc2l_latency",
        &[
            (hit_labels, &hit),
            (miss_labels, &miss),
            (otm_labels, &one_to_many),
            (upd_labels, &updates),
        ],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_fixture() -> ServerStats {
        ServerStats {
            method_tag: hc2l_oracle::Method::Hc2l.tag(),
            kernel_tag: hc2l_graph::KernelKind::Scalar.tag(),
            num_vertices: 256,
            index_bytes: 1 << 20,
            threads: 4,
            mapped: false,
            distance_queries: 10,
            one_to_many_queries: 2,
            one_to_many_targets: 64,
            cache_hits: 6,
            cache_misses: 4,
            cache_len: 4,
            cache_capacity: 1024,
            update_batches: 1,
            epoch: 1,
            connections_accepted: 3,
            connections_reaped: 0,
            panics_caught: 0,
            overload_rejections: 0,
            write_errors: 0,
            distance_p50_ns: 0,
            distance_p90_ns: 0,
            distance_p99_ns: 0,
            distance_p999_ns: 0,
            distance_max_ns: 0,
            one_to_many_p50_ns: 0,
            one_to_many_p99_ns: 0,
            update_p50_ns: 0,
            update_p99_ns: 0,
        }
    }

    #[test]
    fn render_emits_counters_and_latency_series() {
        let lat = OpLatencies::enabled();
        for v in [70u64, 80, 90, 5000] {
            lat.distance_hit.record(v);
        }
        lat.distance_miss.record(900);
        let doc = render(&stats_fixture(), &lat);
        assert!(
            doc.contains("hc2l_index_info{method=\"HC2L\",kernel=\"scalar\",mapped=\"false\"} 1")
        );
        assert!(doc.contains("hc2l_requests_total{op=\"distance\"} 10"));
        assert!(doc.contains("hc2l_cache_hits_total 6"));
        assert!(doc.contains("hc2l_latency_count{op=\"distance\",cache=\"hit\"} 4"));
        assert!(doc.contains("hc2l_latency_count{op=\"distance\",cache=\"miss\"} 1"));
        assert!(doc.contains("# TYPE hc2l_latency_p99_ns gauge"));
        // Every line is a comment or a sample ending in a number.
        for line in doc.lines() {
            assert!(
                line.starts_with("# TYPE ")
                    || line
                        .rsplit(' ')
                        .next()
                        .is_some_and(|v| v.parse::<u64>().is_ok()),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn recording_toggle_gates_spans() {
        let lat = OpLatencies::enabled();
        assert!(lat.recording());
        assert!(lat.start().is_some());
        lat.set_recording(false);
        assert!(lat.start().is_none());
        lat.set_recording(true);
        assert!(lat.start().is_some());
    }

    #[test]
    fn distance_merged_folds_hit_and_miss() {
        let lat = OpLatencies::enabled();
        lat.distance_hit.record(10);
        lat.distance_hit.record(20);
        lat.distance_miss.record(30_000);
        let merged = lat.distance_merged();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), 10);
        assert_eq!(merged.max(), 30_000);
    }
}
