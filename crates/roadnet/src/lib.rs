//! Road-network datasets and workloads for the HC2L reproduction.
//!
//! The paper evaluates on ten DIMACS / PTV road networks (NY through the full
//! USA and Western Europe). Those inputs are not redistributable with this
//! repository, so this crate provides two sources of data:
//!
//! * [`dimacs`] — a parser for the DIMACS `.gr` format (and the coordinate
//!   `.co` companion files), so the original datasets can be dropped in when
//!   available.
//! * [`synthetic`] — generators for synthetic road networks that match the
//!   structural characteristics driving the paper's results: low average
//!   degree (~2.5), large diameter, planar-like small separators, and a
//!   sparse overlay of faster "highway" roads. Both the *distance* and the
//!   *travel-time* edge-weight modes of the paper are supported (see
//!   [`weights::WeightMode`]).
//! * [`workload`] — query workloads: uniform random pairs (Tables 2–4) and
//!   the distance-stratified buckets Q1..Q10 of Figure 6.
//! * [`datasets`] — the named synthetic dataset sweep standing in for the
//!   paper's Table 1, used by the benchmark harness.
//! * [`stats`] — dataset summary statistics (|V|, |E|, diameter estimate,
//!   memory) used to regenerate Table 1.

pub mod datasets;
pub mod dimacs;
pub mod stats;
pub mod synthetic;
pub mod updates;
pub mod weights;
pub mod workload;

pub use datasets::{standard_suite, DatasetSpec, SuiteScale};
pub use dimacs::{parse_gr_reader, parse_gr_str, write_gr};
pub use stats::{dataset_summary, DatasetSummary};
pub use synthetic::{seeded_grid, RoadNetwork, RoadNetworkConfig};
pub use updates::{
    random_weight_updates, read_update_file, validate_update_batch, write_update_file,
    UpdateBatchError,
};
pub use weights::WeightMode;
pub use workload::{
    distance_buckets, random_pairs, read_workload_file, write_workload_file, QueryBuckets,
    QueryPair, ReplayWorkload,
};
