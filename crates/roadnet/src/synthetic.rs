//! Synthetic road-network generators.
//!
//! The DIMACS datasets the paper uses are large downloads that cannot be
//! bundled here, so the benchmark harness runs on synthetic networks that
//! reproduce the structural characteristics responsible for the paper's
//! findings:
//!
//! * **low average degree** (~2.5–3): road networks are nearly planar chains
//!   of intersections;
//! * **large diameter**: distances grow with the square root of the vertex
//!   count rather than logarithmically;
//! * **small balanced separators**: a geographic region can be split by a
//!   cut whose size is `O(sqrt(n))`, which is exactly what HC2L's balanced
//!   tree hierarchy exploits;
//! * **a sparse hierarchy of faster roads** so that the distance vs.
//!   travel-time contrast of Tables 2 and 4 is reproduced.
//!
//! Two generators are provided: a perturbed partial grid ("city") and a
//! multi-city map where grid clusters are connected by long corridors, which
//! produces the very small top-level cuts observed on real continental
//! networks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hc2l_graph::{Graph, GraphBuilder, Vertex};

use crate::weights::{RoadClass, WeightMode};

/// A single undirected road segment before weight-mode resolution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub u: Vertex,
    /// Second endpoint.
    pub v: Vertex,
    /// Physical length (metres).
    pub length: u32,
    /// Functional road class.
    pub class: RoadClass,
}

/// A generated road network: geometry plus segments. Edge weights are
/// materialised per [`WeightMode`] via [`RoadNetwork::graph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    /// Planar coordinates of each vertex (metres).
    pub coords: Vec<(f64, f64)>,
    /// All road segments.
    pub segments: Vec<Segment>,
}

impl RoadNetwork {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of segments (undirected edges).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Materialises the weighted graph for the given weight mode.
    pub fn graph(&self, mode: WeightMode) -> Graph {
        let mut b = GraphBuilder::new(self.num_vertices());
        for s in &self.segments {
            b.add_edge(s.u, s.v, mode.weight_of(s.length, s.class));
        }
        b.build()
    }

    /// Euclidean distance between two vertices' coordinates (metres); a lower
    /// bound on their network distance in [`WeightMode::Distance`].
    pub fn euclidean(&self, u: Vertex, v: Vertex) -> f64 {
        let (x1, y1) = self.coords[u as usize];
        let (x2, y2) = self.coords[v as usize];
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }
}

/// Configuration for the grid-city generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetworkConfig {
    /// Number of grid rows.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Fraction of non-spanning-tree grid edges removed, producing the low
    /// average degree of real road networks. In `[0, 1)`.
    pub removal_fraction: f64,
    /// Every `highway_spacing`-th row/column is upgraded to a highway
    /// (arterials half-way in between). 0 disables the road hierarchy.
    pub highway_spacing: usize,
    /// Base block length in metres.
    pub block_length: u32,
    /// Relative coordinate jitter (0.0 = perfect grid).
    pub jitter: f64,
    /// RNG seed, so datasets are reproducible across runs.
    pub seed: u64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            rows: 32,
            cols: 32,
            removal_fraction: 0.35,
            highway_spacing: 8,
            block_length: 100,
            jitter: 0.25,
            seed: 42,
        }
    }
}

impl RoadNetworkConfig {
    /// Convenience constructor for an `rows x cols` city with default knobs.
    pub fn city(rows: usize, cols: usize, seed: u64) -> Self {
        RoadNetworkConfig {
            rows,
            cols,
            seed,
            ..Default::default()
        }
    }

    /// Generates the network.
    pub fn generate(&self) -> RoadNetwork {
        generate_city(self)
    }
}

fn vertex_id(r: usize, c: usize, cols: usize) -> Vertex {
    (r * cols + c) as Vertex
}

/// Generates a perturbed partial-grid city network.
pub fn generate_city(cfg: &RoadNetworkConfig) -> RoadNetwork {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "city must be at least 2x2");
    assert!((0.0..1.0).contains(&cfg.removal_fraction));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.rows * cfg.cols;

    // Coordinates: perturbed grid.
    let mut coords = Vec::with_capacity(n);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let jx = (rng.random::<f64>() - 0.5) * cfg.jitter * cfg.block_length as f64;
            let jy = (rng.random::<f64>() - 0.5) * cfg.jitter * cfg.block_length as f64;
            coords.push((
                c as f64 * cfg.block_length as f64 + jx,
                r as f64 * cfg.block_length as f64 + jy,
            ));
        }
    }

    // Candidate grid edges with their road class.
    let class_of = |r: usize, c: usize, horizontal: bool| -> RoadClass {
        if cfg.highway_spacing == 0 {
            return RoadClass::Local;
        }
        let lane = if horizontal { r } else { c };
        if lane % cfg.highway_spacing == 0 {
            RoadClass::Highway
        } else if lane % cfg.highway_spacing == cfg.highway_spacing / 2 {
            RoadClass::Arterial
        } else {
            RoadClass::Local
        }
    };
    let mut candidates: Vec<(Vertex, Vertex, RoadClass)> = Vec::new();
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                candidates.push((
                    vertex_id(r, c, cfg.cols),
                    vertex_id(r, c + 1, cfg.cols),
                    class_of(r, c, true),
                ));
            }
            if r + 1 < cfg.rows {
                candidates.push((
                    vertex_id(r, c, cfg.cols),
                    vertex_id(r + 1, c, cfg.cols),
                    class_of(r, c, false),
                ));
            }
        }
    }

    // Keep a random spanning tree so the network remains connected, then keep
    // each remaining edge with probability (1 - removal_fraction). Highways
    // are never removed: real motorways are contiguous.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.shuffle(&mut rng);
    let mut dsu = DisjointSets::new(n);
    let mut keep = vec![false; candidates.len()];
    for &i in &order {
        let (u, v, class) = candidates[i];
        let spanning = dsu.union(u as usize, v as usize);
        if spanning || class == RoadClass::Highway || rng.random::<f64>() >= cfg.removal_fraction {
            keep[i] = true;
        }
    }

    let length_of = |u: Vertex, v: Vertex, coords: &[(f64, f64)]| -> u32 {
        let (x1, y1) = coords[u as usize];
        let (x2, y2) = coords[v as usize];
        (((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().round() as u32).max(1)
    };

    let segments = candidates
        .iter()
        .zip(keep.iter())
        .filter(|(_, &k)| k)
        .map(|(&(u, v, class), _)| Segment {
            u,
            v,
            length: length_of(u, v, &coords),
            class,
        })
        .collect();

    RoadNetwork { coords, segments }
}

/// Configuration for the multi-city generator: `cities` grid clusters laid
/// out on a ring, connected by sparse highway corridors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiCityConfig {
    /// Number of city clusters.
    pub cities: usize,
    /// Configuration of each city (the seed is varied per city).
    pub city: RoadNetworkConfig,
    /// Number of corridor connections between consecutive cities.
    pub corridors_per_link: usize,
    /// Length of each corridor in segments.
    pub corridor_hops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiCityConfig {
    fn default() -> Self {
        MultiCityConfig {
            cities: 4,
            city: RoadNetworkConfig {
                rows: 16,
                cols: 16,
                ..Default::default()
            },
            corridors_per_link: 2,
            corridor_hops: 6,
            seed: 7,
        }
    }
}

/// Generates a multi-city network: several grid cities connected in a ring by
/// long highway corridors. The corridors form very small cuts between large
/// balanced regions — the regime where HC2L's hierarchy shines.
pub fn generate_multi_city(cfg: &MultiCityConfig) -> RoadNetwork {
    assert!(cfg.cities >= 2, "need at least two cities");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut coords: Vec<(f64, f64)> = Vec::new();
    let mut segments: Vec<Segment> = Vec::new();
    let mut city_offsets = Vec::new();

    // Lay the cities out on a circle so corridor lengths are comparable.
    let city_extent = (cfg.city.cols.max(cfg.city.rows) as f64) * cfg.city.block_length as f64;
    let ring_radius = city_extent * cfg.cities as f64 / std::f64::consts::PI;
    for i in 0..cfg.cities {
        let mut sub_cfg = cfg.city.clone();
        sub_cfg.seed = cfg
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(i as u64);
        let city = generate_city(&sub_cfg);
        let angle = 2.0 * std::f64::consts::PI * i as f64 / cfg.cities as f64;
        let (cx, cy) = (ring_radius * angle.cos(), ring_radius * angle.sin());
        let offset = coords.len() as Vertex;
        city_offsets.push(offset);
        coords.extend(city.coords.iter().map(|&(x, y)| (x + cx, y + cy)));
        segments.extend(city.segments.iter().map(|s| Segment {
            u: s.u + offset,
            v: s.v + offset,
            ..*s
        }));
    }

    // Corridors between consecutive cities (ring topology).
    let city_size = (cfg.city.rows * cfg.city.cols) as Vertex;
    for i in 0..cfg.cities {
        let a_off = city_offsets[i];
        let b_off = city_offsets[(i + 1) % cfg.cities];
        for _ in 0..cfg.corridors_per_link.max(1) {
            let a = a_off + rng.random_range(0..city_size);
            let b = b_off + rng.random_range(0..city_size);
            // Build a chain of `corridor_hops` intermediate vertices between a and b.
            let (ax, ay) = coords[a as usize];
            let (bx, by) = coords[b as usize];
            let hops = cfg.corridor_hops.max(1);
            let mut prev = a;
            for h in 1..=hops {
                let t = h as f64 / (hops + 1) as f64;
                let next = if h == hops { b } else { u32::MAX };
                let (nx, ny) = (ax + (bx - ax) * t, ay + (by - ay) * t);
                let cur = if next == b && h == hops {
                    b
                } else {
                    coords.push((nx, ny));
                    (coords.len() - 1) as Vertex
                };
                let (px, py) = coords[prev as usize];
                let (cx2, cy2) = coords[cur as usize];
                let length =
                    (((px - cx2).powi(2) + (py - cy2).powi(2)).sqrt().round() as u32).max(1);
                segments.push(Segment {
                    u: prev,
                    v: cur,
                    length,
                    class: RoadClass::Highway,
                });
                prev = cur;
            }
        }
    }

    RoadNetwork { coords, segments }
}

/// A `rows x cols` grid with seeded random weights in `1..=20` — the
/// reference workload for cross-PR query-time comparisons (the JSON bench)
/// and for serve-smoke workload generation, so the bench runner and the
/// `hc2l-query` client reconstruct the *same* graph from `(rows, cols,
/// seed)` alone.
pub fn seeded_grid(rows: usize, cols: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), rng.random_range(1..=20u32));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), rng.random_range(1..=20u32));
            }
        }
    }
    b.build()
}

/// Minimal union-find used to guarantee connectivity of generated networks.
struct DisjointSets {
    parent: Vec<usize>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc2l_graph::components::is_connected;
    use hc2l_graph::dijkstra::dijkstra_distance;

    #[test]
    fn city_is_connected_and_sparse() {
        let net = RoadNetworkConfig::city(20, 20, 1).generate();
        let g = net.graph(WeightMode::Distance);
        assert_eq!(g.num_vertices(), 400);
        assert!(is_connected(&g));
        let avg = g.average_degree();
        assert!(
            avg > 2.0 && avg < 3.6,
            "average degree {avg} outside road-network range"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RoadNetworkConfig::city(10, 12, 99).generate();
        let b = RoadNetworkConfig::city(10, 12, 99).generate();
        let c = RoadNetworkConfig::city(10, 12, 100).generate();
        assert_eq!(a.num_segments(), b.num_segments());
        assert_eq!(a.coords.len(), b.coords.len());
        assert!(a
            .segments
            .iter()
            .zip(b.segments.iter())
            .all(|(x, y)| x.u == y.u && x.v == y.v && x.length == y.length));
        // A different seed should (overwhelmingly likely) differ.
        assert!(
            a.num_segments() != c.num_segments()
                || a.segments
                    .iter()
                    .zip(c.segments.iter())
                    .any(|(x, y)| x.length != y.length)
        );
    }

    #[test]
    fn travel_time_shrinks_highway_weights() {
        let net = RoadNetworkConfig::city(16, 16, 3).generate();
        let dist = net.graph(WeightMode::Distance);
        let time = net.graph(WeightMode::TravelTime);
        assert_eq!(dist.num_edges(), time.num_edges());
        // Total weight must strictly drop when highways get a speed boost.
        assert!(time.total_weight() < dist.total_weight());
    }

    #[test]
    fn euclidean_lower_bounds_network_distance() {
        let net = RoadNetworkConfig::city(12, 12, 5).generate();
        let g = net.graph(WeightMode::Distance);
        for &(s, t) in &[(0u32, 143u32), (5, 100), (30, 77)] {
            let d = dijkstra_distance(&g, s, t);
            assert!(
                d as f64 + 1e-6 >= net.euclidean(s, t) * 0.7,
                "network distance should not undercut straight-line distance by much"
            );
        }
    }

    #[test]
    fn multi_city_is_connected() {
        let cfg = MultiCityConfig {
            cities: 3,
            city: RoadNetworkConfig::city(8, 8, 2),
            corridors_per_link: 1,
            corridor_hops: 4,
            seed: 11,
        };
        let net = generate_multi_city(&cfg);
        let g = net.graph(WeightMode::Distance);
        assert!(g.num_vertices() > 3 * 64);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic]
    fn tiny_city_rejected() {
        RoadNetworkConfig::city(1, 5, 0).generate();
    }
}
