//! Edge-weight modes.
//!
//! The paper evaluates every method twice: once with *distances* (metres) as
//! edge weights (Table 2) and once with *travel times* (Table 4). The two
//! modes stress the labellings differently — travel times make highways much
//! "shorter" than local roads, which improves the orderings found by HL and
//! PHL — so the synthetic generator supports both.

use serde::{Deserialize, Serialize};

use hc2l_graph::Weight;

/// Functional class of a road segment, used to derive travel-time weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoadClass {
    /// Local/residential street.
    Local,
    /// Arterial road: faster than local streets.
    Arterial,
    /// Motorway/highway: the fastest class.
    Highway,
}

impl RoadClass {
    /// Free-flow speed factor relative to local streets. Travel time is
    /// `length / speed_factor`, so higher factors yield smaller weights.
    pub fn speed_factor(self) -> u32 {
        match self {
            RoadClass::Local => 1,
            RoadClass::Arterial => 2,
            RoadClass::Highway => 4,
        }
    }
}

/// Which quantity the edge weights represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightMode {
    /// Physical length of the road segment (paper: "distances").
    Distance,
    /// Free-flow traversal time of the segment (paper: "travel times").
    TravelTime,
}

impl WeightMode {
    /// Converts a segment's length and class into an edge weight under this
    /// mode. Weights are never zero.
    pub fn weight_of(self, length: u32, class: RoadClass) -> Weight {
        match self {
            WeightMode::Distance => length.max(1),
            WeightMode::TravelTime => (length / class.speed_factor()).max(1),
        }
    }

    /// Short label used in benchmark output ("dist" / "time").
    pub fn label(self) -> &'static str {
        match self {
            WeightMode::Distance => "dist",
            WeightMode::TravelTime => "time",
        }
    }
}

impl std::fmt::Display for WeightMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightMode::Distance => write!(f, "distance"),
            WeightMode::TravelTime => write!(f, "travel-time"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_time_rewards_faster_classes() {
        let len = 1000;
        let d = WeightMode::Distance;
        let t = WeightMode::TravelTime;
        assert_eq!(d.weight_of(len, RoadClass::Local), 1000);
        assert_eq!(d.weight_of(len, RoadClass::Highway), 1000);
        assert_eq!(t.weight_of(len, RoadClass::Local), 1000);
        assert_eq!(t.weight_of(len, RoadClass::Arterial), 500);
        assert_eq!(t.weight_of(len, RoadClass::Highway), 250);
    }

    #[test]
    fn weights_are_never_zero() {
        assert_eq!(WeightMode::TravelTime.weight_of(1, RoadClass::Highway), 1);
        assert_eq!(WeightMode::Distance.weight_of(0, RoadClass::Local), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WeightMode::Distance.label(), "dist");
        assert_eq!(WeightMode::TravelTime.label(), "time");
        assert_eq!(format!("{}", WeightMode::TravelTime), "travel-time");
    }
}
