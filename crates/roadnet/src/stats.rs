//! Dataset summary statistics (the paper's Table 1).

use serde::{Deserialize, Serialize};

use hc2l_graph::pathutil::diameter_double_sweep;
use hc2l_graph::{CsrGraph, Distance, Graph};

/// Summary row describing a dataset, mirroring Table 1 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Free-text description of the region the dataset models.
    pub region: String,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Lower bound on the diameter (double-sweep estimate), expressed in
    /// *hops over weighted edges* like the paper's `diam.` column.
    pub diameter: Distance,
    /// Average vertex degree.
    pub avg_degree: f64,
    /// Memory footprint of the CSR representation in bytes.
    pub memory_bytes: usize,
}

impl DatasetSummary {
    /// Memory in mebibytes, for display.
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Computes the summary for a dataset.
pub fn dataset_summary(name: &str, region: &str, g: &Graph) -> DatasetSummary {
    let diameter = if g.num_vertices() == 0 {
        0
    } else {
        diameter_double_sweep(g, 0)
    };
    DatasetSummary {
        name: name.to_string(),
        region: region.to_string(),
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        diameter,
        avg_degree: g.average_degree(),
        memory_bytes: CsrGraph::from_graph(g).memory_bytes(),
    }
}

/// Formats a list of summaries as an aligned text table (used by the `repro`
/// binary for Table 1).
pub fn format_summary_table(rows: &[DatasetSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>12} {:>8} {:>10}\n",
        "Dataset", "|V|", "|E|", "diam.", "deg.", "Memory"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>12} {:>8.2} {:>8.1} MB\n",
            r.name,
            r.num_vertices,
            r.num_edges,
            r.diameter,
            r.avg_degree,
            r.memory_mib()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RoadNetworkConfig;
    use crate::weights::WeightMode;
    use hc2l_graph::toy::paper_figure1;

    #[test]
    fn summary_of_paper_example() {
        let g = paper_figure1();
        let s = dataset_summary("FIG1", "paper example", &g);
        assert_eq!(s.num_vertices, 16);
        assert_eq!(s.num_edges, 26);
        assert!(s.diameter >= 4);
        assert!(s.avg_degree > 3.0);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn summary_of_synthetic_city() {
        let net = RoadNetworkConfig::city(12, 12, 77).generate();
        let g = net.graph(WeightMode::Distance);
        let s = dataset_summary("CITY", "12x12 synthetic", &g);
        assert_eq!(s.num_vertices, 144);
        assert!(
            s.diameter > 1000,
            "diameter should be in metres, got {}",
            s.diameter
        );
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let g = paper_figure1();
        let rows = vec![dataset_summary("A", "", &g), dataset_summary("B", "", &g)];
        let table = format_summary_table(&rows);
        assert!(table.contains("A"));
        assert!(table.contains("B"));
        assert!(table.lines().count() >= 3);
    }
}
