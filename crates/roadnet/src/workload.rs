//! Query workloads.
//!
//! Two workloads are used by the paper's evaluation:
//!
//! * **uniform random pairs** — one million pairs sampled from `V x V`
//!   (Tables 2 and 4);
//! * **distance-stratified buckets Q1..Q10** (Figure 6) — `l_min` is fixed at
//!   1000 metres, `l_max` is the largest pairwise distance in the network,
//!   `x = (l_max / l_min)^(1/10)`, and bucket `Q_i` contains pairs whose
//!   distance falls in `(l_min * x^(i-1), l_min * x^i]`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hc2l_graph::{dijkstra, Distance, Graph, Vertex};

/// A single source/target query pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryPair {
    /// Source vertex.
    pub source: Vertex,
    /// Target vertex.
    pub target: Vertex,
}

/// Samples `count` uniform random pairs (source may equal target, as in the
/// paper's benchmark which samples from `V x V`).
pub fn random_pairs(num_vertices: usize, count: usize, seed: u64) -> Vec<QueryPair> {
    assert!(num_vertices > 0, "cannot sample pairs from an empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| QueryPair {
            source: rng.random_range(0..num_vertices as Vertex),
            target: rng.random_range(0..num_vertices as Vertex),
        })
        .collect()
}

/// The number of distance buckets used by Figure 6.
pub const NUM_BUCKETS: usize = 10;

/// Distance-stratified query buckets (Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryBuckets {
    /// `l_min` (paper: 1000 metres).
    pub l_min: Distance,
    /// `l_max`: the maximum pairwise distance observed.
    pub l_max: Distance,
    /// Bucket boundaries: bucket `i` covers `(bounds[i], bounds[i+1]]`.
    pub bounds: Vec<Distance>,
    /// The query pairs per bucket.
    pub buckets: Vec<Vec<QueryPair>>,
}

impl QueryBuckets {
    /// Index of the bucket a distance falls into, or `None` when it is below
    /// `l_min` or the distance is zero/unreachable.
    pub fn bucket_of(&self, d: Distance) -> Option<usize> {
        if d == 0 {
            return None;
        }
        bucket_index(&self.bounds, d)
    }

    /// Total number of queries across all buckets.
    pub fn total_queries(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

/// Generates distance-stratified buckets for `g`.
///
/// `per_bucket` pairs are collected for each bucket (the paper uses 10,000;
/// tests and benches use less). `l_min` defaults to 1000 but is clamped so
/// that at least two buckets are non-degenerate on small synthetic networks.
/// Distances are evaluated with Dijkstra from sampled sources, which is also
/// how the reference implementations generate their workloads.
pub fn distance_buckets(g: &Graph, per_bucket: usize, l_min: Distance, seed: u64) -> QueryBuckets {
    assert!(g.num_vertices() > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_vertices();

    // Estimate l_max with a double sweep and a few random eccentricities.
    let mut l_max: Distance = 0;
    for _ in 0..4 {
        let s = rng.random_range(0..n as Vertex);
        let dist = dijkstra(g, s);
        let far = dist
            .iter()
            .copied()
            .filter(|&d| d < hc2l_graph::INFINITY)
            .max()
            .unwrap_or(0);
        if far > l_max {
            l_max = far;
            // Sweep again from the farthest vertex for a better bound.
            let far_v = dist.iter().position(|&d| d == far).unwrap() as Vertex;
            let dist2 = dijkstra(g, far_v);
            let far2 = dist2
                .iter()
                .copied()
                .filter(|&d| d < hc2l_graph::INFINITY)
                .max()
                .unwrap_or(0);
            l_max = l_max.max(far2);
        }
    }
    let l_min = l_min.max(1).min(l_max / 4).max(1);
    let x = (l_max as f64 / l_min as f64).powf(1.0 / NUM_BUCKETS as f64);
    let mut bounds = Vec::with_capacity(NUM_BUCKETS + 1);
    for i in 0..=NUM_BUCKETS {
        bounds.push((l_min as f64 * x.powi(i as i32)).round() as Distance);
    }
    // Bucket 0 starts strictly below l_min so short queries are not dropped.
    bounds[0] = 0;
    bounds[NUM_BUCKETS] = bounds[NUM_BUCKETS].max(l_max);

    let mut buckets: Vec<Vec<QueryPair>> = vec![Vec::new(); NUM_BUCKETS];
    let mut full = 0usize;
    // Sample sources, run Dijkstra once per source, and distribute the
    // resulting pairs over buckets until every bucket is full (or we give up).
    let max_sources = 40 * NUM_BUCKETS.max(1);
    let mut sources_used = 0usize;
    while full < NUM_BUCKETS && sources_used < max_sources {
        let s = rng.random_range(0..n as Vertex);
        sources_used += 1;
        let dist = dijkstra(g, s);
        // Visit targets in random order to avoid biasing buckets to low ids.
        let mut targets: Vec<Vertex> = (0..n as Vertex).collect();
        for i in (1..targets.len()).rev() {
            let j = rng.random_range(0..=i);
            targets.swap(i, j);
        }
        for t in targets {
            let d = dist[t as usize];
            if d == 0 || d >= hc2l_graph::INFINITY {
                continue;
            }
            let idx = match bucket_index(&bounds, d) {
                Some(i) => i,
                None => continue,
            };
            if buckets[idx].len() < per_bucket {
                buckets[idx].push(QueryPair {
                    source: s,
                    target: t,
                });
                if buckets[idx].len() == per_bucket {
                    full += 1;
                }
            }
        }
    }

    QueryBuckets {
        l_min,
        l_max,
        bounds,
        buckets,
    }
}

fn bucket_index(bounds: &[Distance], d: Distance) -> Option<usize> {
    (0..NUM_BUCKETS).find(|&i| d > bounds[i] && d <= bounds[i + 1])
}

/// A query workload loaded from (or destined for) a workload file: pairs
/// plus, optionally, the expected exact distance of every pair — which lets
/// a replay client gate exactness without having the graph at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayWorkload {
    /// The query pairs, in replay order.
    pub pairs: Vec<QueryPair>,
    /// Expected distances parallel to `pairs`; empty when the file carried
    /// none.
    pub expected: Vec<Distance>,
}

impl ReplayWorkload {
    /// Whether the workload carries expected distances to verify against.
    pub fn has_expected(&self) -> bool {
        !self.expected.is_empty()
    }
}

/// Serialises a workload to the plain-text query-file format consumed by
/// [`read_workload_file`] (and by the `hc2l-query` replay client): one
/// `source target [expected]` triple per line, `#` comments, unreachable
/// distances spelled `inf`.
pub fn write_workload_file(
    path: &std::path::Path,
    pairs: &[QueryPair],
    expected: Option<&[Distance]>,
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(e) = expected {
        assert_eq!(e.len(), pairs.len(), "one expected distance per pair");
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# hc2l query workload: source target [expected]")?;
    for (i, p) in pairs.iter().enumerate() {
        match expected {
            Some(e) if e[i] >= hc2l_graph::INFINITY => {
                writeln!(out, "{} {} inf", p.source, p.target)?
            }
            Some(e) => writeln!(out, "{} {} {}", p.source, p.target, e[i])?,
            None => writeln!(out, "{} {}", p.source, p.target)?,
        }
    }
    out.flush()
}

/// Parses a query file written by [`write_workload_file`]. Blank lines and
/// `#` comments are skipped; a malformed line is an
/// [`std::io::ErrorKind::InvalidData`] error naming the line number. Lines
/// either all carry an expected distance or none do.
pub fn read_workload_file(path: &std::path::Path) -> std::io::Result<ReplayWorkload> {
    let text = std::fs::read_to_string(path)?;
    let bad = |line: usize, what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}:{line}: {what}", path.display()),
        )
    };
    let mut w = ReplayWorkload {
        pairs: Vec::new(),
        expected: Vec::new(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let source: Vertex = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad(line, "expected a source vertex id"))?;
        let target: Vertex = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad(line, "expected a target vertex id"))?;
        let expected = match fields.next() {
            None => None,
            Some("inf") => Some(hc2l_graph::INFINITY),
            Some(f) => Some(
                f.parse::<Distance>()
                    .map_err(|_| bad(line, "expected a distance or 'inf'"))?,
            ),
        };
        if fields.next().is_some() {
            return Err(bad(line, "trailing fields"));
        }
        match expected {
            Some(d) => {
                if w.pairs.len() != w.expected.len() {
                    return Err(bad(line, "mixed lines with and without expected distances"));
                }
                w.expected.push(d);
            }
            None if !w.expected.is_empty() => {
                return Err(bad(line, "mixed lines with and without expected distances"));
            }
            None => {}
        }
        w.pairs.push(QueryPair { source, target });
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RoadNetworkConfig;
    use crate::weights::WeightMode;
    use hc2l_graph::dijkstra_distance;
    use hc2l_graph::toy::paper_figure1;

    #[test]
    fn random_pairs_are_reproducible_and_in_range() {
        let pairs_a = random_pairs(100, 50, 7);
        let pairs_b = random_pairs(100, 50, 7);
        assert_eq!(pairs_a, pairs_b);
        assert!(pairs_a
            .iter()
            .all(|p| (p.source as usize) < 100 && (p.target as usize) < 100));
        let pairs_c = random_pairs(100, 50, 8);
        assert_ne!(pairs_a, pairs_c);
    }

    #[test]
    fn buckets_cover_increasing_distances() {
        let net = RoadNetworkConfig::city(16, 16, 21).generate();
        let g = net.graph(WeightMode::Distance);
        let buckets = distance_buckets(&g, 20, 1000, 3);
        assert_eq!(buckets.buckets.len(), NUM_BUCKETS);
        assert!(buckets.l_max > buckets.l_min);
        // Bounds must be non-decreasing.
        for w in buckets.bounds.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Each stored pair's true distance must fall inside its bucket range.
        for (i, bucket) in buckets.buckets.iter().enumerate() {
            for pair in bucket.iter().take(5) {
                let d = dijkstra_distance(&g, pair.source, pair.target);
                assert!(d > buckets.bounds[i] && d <= buckets.bounds[i + 1]);
            }
        }
        // At least the middle buckets should have found queries.
        let non_empty = buckets.buckets.iter().filter(|b| !b.is_empty()).count();
        assert!(
            non_empty >= NUM_BUCKETS / 2,
            "only {non_empty} buckets populated"
        );
    }

    #[test]
    fn bucket_of_maps_distances_consistently() {
        let g = paper_figure1();
        let buckets = distance_buckets(&g, 5, 1000, 1);
        for (i, bucket) in buckets.buckets.iter().enumerate() {
            for pair in bucket {
                let d = dijkstra_distance(&g, pair.source, pair.target);
                assert_eq!(buckets.bucket_of(d), Some(i));
            }
        }
        assert_eq!(buckets.bucket_of(0), None);
    }

    #[test]
    fn total_queries_counts_all_buckets() {
        let g = paper_figure1();
        let buckets = distance_buckets(&g, 3, 1, 1);
        assert_eq!(
            buckets.total_queries(),
            buckets.buckets.iter().map(|b| b.len()).sum::<usize>()
        );
    }

    #[test]
    #[should_panic]
    fn empty_graph_rejected() {
        random_pairs(0, 10, 1);
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hc2l-workload-{tag}-{}.q", std::process::id()))
    }

    #[test]
    fn workload_file_round_trips_with_and_without_expected() {
        let pairs = random_pairs(50, 20, 9);
        let expected: Vec<Distance> = (0..20)
            .map(|i| {
                if i == 7 {
                    hc2l_graph::INFINITY
                } else {
                    i as Distance * 3
                }
            })
            .collect();
        let path = scratch("roundtrip");

        write_workload_file(&path, &pairs, Some(&expected)).unwrap();
        let w = read_workload_file(&path).unwrap();
        assert_eq!(w.pairs, pairs);
        assert_eq!(w.expected, expected);
        assert!(w.has_expected());

        write_workload_file(&path, &pairs, None).unwrap();
        let w = read_workload_file(&path).unwrap();
        assert_eq!(w.pairs, pairs);
        assert!(!w.has_expected());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workload_file_rejects_malformed_lines() {
        let path = scratch("malformed");
        for bad in [
            "1\n",
            "1 2 3 4\n",
            "a b\n",
            "1 2 xyz\n",
            "1 2 3\n4 5\n", // mixed expected / no-expected
            "1 2\n4 5 6\n",
        ] {
            std::fs::write(&path, bad).unwrap();
            let err = read_workload_file(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{bad:?}");
        }
        // Comments and blank lines are fine.
        std::fs::write(&path, "# header\n\n1 2 # trailing comment\n3 4\n").unwrap();
        let w = read_workload_file(&path).unwrap();
        assert_eq!(w.pairs.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_grid_is_shared_and_deterministic() {
        let a = crate::seeded_grid(8, 8, 3);
        let b = crate::seeded_grid(8, 8, 3);
        assert_eq!(a.num_vertices(), 64);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
