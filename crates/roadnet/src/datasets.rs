//! Named synthetic dataset suite.
//!
//! The paper's Table 1 lists ten road networks from New York City (264k
//! vertices) up to the whole USA (24M vertices). Reproducing the experiments
//! at full scale requires the original DIMACS downloads and hours of
//! preprocessing; the suite here mirrors the *progression* of the table with
//! synthetic networks whose sizes grow by roughly the same factors, so every
//! experiment can be regenerated on a laptop. When the real datasets are
//! available on disk they can be loaded through [`crate::dimacs`] and passed
//! to the same harness.

use serde::{Deserialize, Serialize};

use crate::synthetic::{generate_multi_city, MultiCityConfig, RoadNetwork, RoadNetworkConfig};

/// How large the synthetic stand-ins should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteScale {
    /// A few hundred vertices per dataset — used by unit/integration tests.
    Tiny,
    /// Thousands of vertices — the default for `cargo bench`.
    Small,
    /// Tens of thousands of vertices — used by the `repro` binary for the
    /// headline tables; takes minutes to index.
    Medium,
}

impl SuiteScale {
    /// Multiplier applied to the base grid dimensions of each dataset.
    fn factor(self) -> usize {
        match self {
            SuiteScale::Tiny => 1,
            SuiteScale::Small => 3,
            SuiteScale::Medium => 8,
        }
    }
}

/// Specification of one synthetic dataset in the suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short name, mirroring the paper's dataset codes (NY, BAY, ...).
    pub name: String,
    /// Human-readable description of the stand-in.
    pub region: String,
    /// The generator configuration. Single-city datasets use `city`,
    /// multi-city ones use `multi`.
    pub config: DatasetConfig,
}

/// Generator configuration variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DatasetConfig {
    /// One contiguous urban grid.
    City(RoadNetworkConfig),
    /// Several cities connected by corridors (continental-style).
    MultiCity(MultiCityConfig),
}

impl DatasetSpec {
    /// Generates the road network for this spec. Generation time and size
    /// go to the `HC2L_LOG` logger at `info` — the medium-scale suite takes
    /// minutes and this is the only progress signal `repro` emits per
    /// dataset.
    pub fn build(&self) -> RoadNetwork {
        let t0 = hc2l_obs::clock::now();
        let net = match &self.config {
            DatasetConfig::City(cfg) => cfg.generate(),
            DatasetConfig::MultiCity(cfg) => generate_multi_city(cfg),
        };
        hc2l_obs::info!(
            "generated dataset {} ({}): {} vertices, {} edges in {:.1}ms",
            self.name,
            self.region,
            net.num_vertices(),
            net.num_segments(),
            hc2l_obs::clock::ns_since(t0) as f64 / 1e6
        );
        net
    }

    /// Expected number of vertices (before corridor vertices are added).
    pub fn nominal_vertices(&self) -> usize {
        match &self.config {
            DatasetConfig::City(cfg) => cfg.rows * cfg.cols,
            DatasetConfig::MultiCity(cfg) => cfg.cities * cfg.city.rows * cfg.city.cols,
        }
    }
}

/// The standard dataset sweep, mirroring the paper's Table 1 progression.
/// The first datasets are single cities; the larger ones are multi-city maps
/// whose top-level cuts are tiny, like the NY dataset's top-level cut of 5
/// mentioned in the paper.
pub fn standard_suite(scale: SuiteScale) -> Vec<DatasetSpec> {
    let f = scale.factor();
    let city = |name: &str, region: &str, rows: usize, cols: usize, seed: u64| DatasetSpec {
        name: name.to_string(),
        region: region.to_string(),
        config: DatasetConfig::City(RoadNetworkConfig {
            rows: rows * f,
            cols: cols * f,
            seed,
            ..Default::default()
        }),
    };
    let multi = |name: &str, region: &str, cities: usize, rows: usize, cols: usize, seed: u64| {
        DatasetSpec {
            name: name.to_string(),
            region: region.to_string(),
            config: DatasetConfig::MultiCity(MultiCityConfig {
                cities,
                city: RoadNetworkConfig {
                    rows: rows * f,
                    cols: cols * f,
                    seed,
                    ..Default::default()
                },
                corridors_per_link: 2,
                corridor_hops: 8,
                seed,
            }),
        }
    };
    vec![
        city("NY-s", "synthetic stand-in for New York City", 14, 14, 101),
        city(
            "BAY-s",
            "synthetic stand-in for San Francisco Bay",
            15,
            15,
            102,
        ),
        city("COL-s", "synthetic stand-in for Colorado", 17, 17, 103),
        city("FLA-s", "synthetic stand-in for Florida", 22, 22, 104),
        multi("CAL-s", "synthetic stand-in for California", 2, 18, 18, 105),
        multi("E-s", "synthetic stand-in for Eastern USA", 3, 19, 19, 106),
        multi("W-s", "synthetic stand-in for Western USA", 4, 19, 19, 107),
        multi(
            "CTR-s",
            "synthetic stand-in for Central USA",
            5,
            21,
            21,
            108,
        ),
        multi(
            "USA-s",
            "synthetic stand-in for the whole USA",
            6,
            22,
            22,
            109,
        ),
        multi(
            "EUR-s",
            "synthetic stand-in for Western Europe",
            6,
            21,
            21,
            110,
        ),
    ]
}

/// A reduced suite (first `k` datasets) for quick experiments.
pub fn reduced_suite(scale: SuiteScale, k: usize) -> Vec<DatasetSpec> {
    let mut suite = standard_suite(scale);
    suite.truncate(k);
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightMode;
    use hc2l_graph::components::is_connected;

    #[test]
    fn suite_has_ten_datasets_with_increasing_size() {
        let suite = standard_suite(SuiteScale::Tiny);
        assert_eq!(suite.len(), 10);
        assert!(suite[0].nominal_vertices() < suite[9].nominal_vertices());
        let names: Vec<_> = suite.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names[0], "NY-s");
        assert_eq!(names[8], "USA-s");
    }

    #[test]
    fn tiny_suite_builds_connected_networks() {
        for spec in reduced_suite(SuiteScale::Tiny, 5) {
            let net = spec.build();
            let g = net.graph(WeightMode::Distance);
            assert!(is_connected(&g), "{} must be connected", spec.name);
            assert!(g.num_vertices() >= spec.nominal_vertices());
        }
    }

    #[test]
    fn scales_increase_vertex_counts() {
        let tiny = &standard_suite(SuiteScale::Tiny)[0];
        let small = &standard_suite(SuiteScale::Small)[0];
        assert!(small.nominal_vertices() > tiny.nominal_vertices());
    }

    #[test]
    fn reduced_suite_truncates() {
        assert_eq!(reduced_suite(SuiteScale::Tiny, 3).len(), 3);
    }
}
