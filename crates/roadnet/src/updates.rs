//! Weight-update workloads: live-traffic batches for the dynamic layer.
//!
//! An update workload is a batch of edge re-weightings — the file analogue
//! of the serve protocol's `UpdateWeights` frame. The plain-text format
//! mirrors the query-workload files: one `u v new_weight` triple per line,
//! `#` comments, blank lines skipped. Real traffic is mostly slowdowns, so
//! the generator biases toward weight *increases* (congestion) with a
//! configurable fraction of decreases (roads clearing up).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use hc2l_dynamic::WeightUpdate;
use hc2l_graph::{Graph, Weight};

/// Samples `count` weight updates over **distinct** existing edges of `g`,
/// seeded and reproducible. Roughly 80% of the updates are increases
/// (weight scaled by 2-8x, congestion) and 20% are decreases (weight
/// halved, floor 1) — the "live traffic" mix the paper's dynamic scenario
/// assumes. Edges are drawn by a partial Fisher–Yates shuffle, so no edge
/// appears twice in a batch — the batches this generator emits pass
/// [`validate_update_batch`] and can be sent over the serve protocol (which
/// rejects duplicates to keep batch semantics unambiguous). `count` is
/// capped at the number of edges in `g`.
pub fn random_weight_updates(g: &Graph, count: usize, seed: u64) -> Vec<WeightUpdate> {
    let mut edges: Vec<(u32, u32, Weight)> = g.edges().collect();
    assert!(
        !edges.is_empty(),
        "cannot sample updates from an edgeless graph"
    );
    let count = count.min(edges.len());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            // Partial Fisher–Yates: swap a uniformly chosen not-yet-used
            // edge into position i; positions before i are never redrawn.
            let j = i + rng.random_range(0..edges.len() - i);
            edges.swap(i, j);
            let (u, v, w) = edges[i];
            let new_weight = if rng.random_range(0..10u32) < 8 {
                w.saturating_mul(2 + rng.random_range(0..7u32)).max(1)
            } else {
                (w / 2).max(1)
            };
            WeightUpdate::new(u, v, new_weight)
        })
        .collect()
}

/// Why a weight-update batch was rejected by [`validate_update_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateBatchError {
    /// The batch contains no updates — nothing to apply.
    Empty,
    /// An endpoint is not a vertex of the target graph.
    OutOfRange {
        /// Index of the offending update within the batch.
        index: usize,
        /// The offending endpoint.
        vertex: u32,
        /// The graph's vertex count (valid ids are `0..num_vertices`).
        num_vertices: usize,
    },
    /// The same undirected edge appears twice: which weight wins would be
    /// ambiguous, so the batch is rejected whole.
    Duplicate {
        /// Index of the *second* occurrence within the batch.
        index: usize,
        /// One endpoint of the repeated edge.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl std::fmt::Display for UpdateBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateBatchError::Empty => write!(f, "empty update batch"),
            UpdateBatchError::OutOfRange {
                index,
                vertex,
                num_vertices,
            } => write!(
                f,
                "update #{index}: endpoint {vertex} is out of range (graph has {num_vertices} vertices)"
            ),
            UpdateBatchError::Duplicate { index, u, v } => write!(
                f,
                "update #{index}: edge ({u}, {v}) appears more than once in the batch"
            ),
        }
    }
}

impl std::error::Error for UpdateBatchError {}

/// Checks a weight-update batch against a graph with `num_vertices`
/// vertices before it is sent or applied: non-empty, every endpoint in
/// range, and no undirected edge updated twice (ambiguous winner). Returns
/// the first violation; on `Err`, nothing should be applied — validation
/// exists so a bad batch fails *whole*, with no partial apply visible to
/// queries.
pub fn validate_update_batch(
    updates: &[WeightUpdate],
    num_vertices: usize,
) -> Result<(), UpdateBatchError> {
    if updates.is_empty() {
        return Err(UpdateBatchError::Empty);
    }
    let mut seen = std::collections::HashSet::with_capacity(updates.len());
    for (index, up) in updates.iter().enumerate() {
        for vertex in [up.u, up.v] {
            if vertex as usize >= num_vertices {
                return Err(UpdateBatchError::OutOfRange {
                    index,
                    vertex,
                    num_vertices,
                });
            }
        }
        let key = (up.u.min(up.v), up.u.max(up.v));
        if !seen.insert(key) {
            return Err(UpdateBatchError::Duplicate {
                index,
                u: up.u,
                v: up.v,
            });
        }
    }
    Ok(())
}

/// Serialises an update batch to the plain-text format consumed by
/// [`read_update_file`] (and by `hc2l-query --update-file`): one
/// `u v new_weight` triple per line, `#` comments.
pub fn write_update_file(path: &std::path::Path, updates: &[WeightUpdate]) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# hc2l weight updates: u v new_weight")?;
    for up in updates {
        writeln!(out, "{} {} {}", up.u, up.v, up.new_weight)?;
    }
    out.flush()
}

/// Parses an update file written by [`write_update_file`]. Blank lines and
/// `#` comments are skipped; a malformed line is an
/// [`std::io::ErrorKind::InvalidData`] error naming the line number.
pub fn read_update_file(path: &std::path::Path) -> std::io::Result<Vec<WeightUpdate>> {
    let text = std::fs::read_to_string(path)?;
    let bad = |line: usize, what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}:{line}: {what}", path.display()),
        )
    };
    let mut updates = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let mut field = |what: &str| -> std::io::Result<u32> {
            fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad(line, what))
        };
        let u = field("expected an endpoint vertex id")?;
        let v = field("expected an endpoint vertex id")?;
        let new_weight = field("expected a new edge weight")?;
        if fields.next().is_some() {
            return Err(bad(line, "trailing fields"));
        }
        updates.push(WeightUpdate::new(u, v, new_weight));
    }
    Ok(updates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hc2l-updates-{tag}-{}.u", std::process::id()))
    }

    #[test]
    fn random_updates_are_reproducible_mostly_increases_and_on_real_edges() {
        let g = crate::seeded_grid(6, 6, 11);
        let a = random_weight_updates(&g, 200, 5);
        let b = random_weight_updates(&g, 200, 5);
        assert_eq!(a, b);
        assert_ne!(a, random_weight_updates(&g, 200, 6));
        let mut increases = 0usize;
        for up in &a {
            let old = g
                .edge_weight(up.u, up.v)
                .expect("update targets a real edge");
            assert!(up.new_weight >= 1);
            if up.new_weight > old {
                increases += 1;
            }
        }
        assert!(
            increases > a.len() / 2,
            "live traffic should be mostly slowdowns: {increases}/{}",
            a.len()
        );
    }

    #[test]
    fn random_updates_hit_distinct_edges_and_cap_at_edge_count() {
        let g = crate::seeded_grid(6, 6, 11);
        let num_edges = g.edges().count();
        // Asking for more updates than edges caps instead of duplicating.
        let a = random_weight_updates(&g, num_edges * 3, 5);
        assert_eq!(a.len(), num_edges);
        validate_update_batch(&a, g.num_vertices()).expect("generator emits valid batches");
        // A partial batch is distinct too.
        let b = random_weight_updates(&g, 20, 7);
        assert_eq!(b.len(), 20);
        validate_update_batch(&b, g.num_vertices()).unwrap();
    }

    #[test]
    fn validation_rejects_empty_out_of_range_and_duplicates() {
        assert_eq!(validate_update_batch(&[], 10), Err(UpdateBatchError::Empty));
        let batch = [WeightUpdate::new(1, 2, 5), WeightUpdate::new(3, 10, 5)];
        assert_eq!(
            validate_update_batch(&batch, 10),
            Err(UpdateBatchError::OutOfRange {
                index: 1,
                vertex: 10,
                num_vertices: 10
            })
        );
        // The reversed endpoints still name the same undirected edge.
        let dup = [
            WeightUpdate::new(1, 2, 5),
            WeightUpdate::new(3, 4, 6),
            WeightUpdate::new(2, 1, 7),
        ];
        assert_eq!(
            validate_update_batch(&dup, 10),
            Err(UpdateBatchError::Duplicate {
                index: 2,
                u: 2,
                v: 1
            })
        );
        let ok = [WeightUpdate::new(1, 2, 5), WeightUpdate::new(3, 4, 6)];
        assert_eq!(validate_update_batch(&ok, 10), Ok(()));
    }

    #[test]
    fn update_file_round_trips() {
        let g = crate::seeded_grid(5, 5, 3);
        let updates = random_weight_updates(&g, 40, 9);
        let path = scratch("roundtrip");
        write_update_file(&path, &updates).unwrap();
        assert_eq!(read_update_file(&path).unwrap(), updates);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn update_file_rejects_malformed_lines() {
        let path = scratch("malformed");
        for bad in ["1 2\n", "1 2 3 4\n", "a b c\n", "1 2 x\n"] {
            std::fs::write(&path, bad).unwrap();
            let err = read_update_file(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{bad:?}");
        }
        std::fs::write(&path, "# header\n\n1 2 30 # comment\n4 5 6\n").unwrap();
        let updates = read_update_file(&path).unwrap();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0], WeightUpdate::new(1, 2, 30));
        std::fs::remove_file(&path).ok();
    }
}
